"""A batch-oriented, non-deterministic GPU-style accelerator model.

The determinism and batch-1 comparisons (Sections IV-F and V) need a
conventional accelerator to contrast against: one that amortizes kernel
launches and memory traffic over large batches, and whose latency varies
run to run because of caches, arbitration, and DVFS.  This model captures
exactly the behaviours the TSP eliminates:

* per-layer **kernel launch overhead** — fixed microseconds per kernel,
  devastating at batch 1, amortized at batch 128;
* **utilization that grows with batch** — matrix units starve below a
  minimum tile occupancy;
* **latency jitter** — a seeded lognormal multiplier standing in for
  cache misses, memory-controller arbitration, and clock throttling.

The parameter defaults approximate a V100-class device (as published:
~5-7 ms batch-128 ResNet50, ~1 ms batch-1).  The point reproduced is the
*shape*: the crossover where the batch-1 TSP beats a large-batch GPU, and
run-to-run variance vs the TSP's zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.resnet import LayerKind, LayerSpec


@dataclass
class GpuModel:
    """Analytic timing model of a batch-oriented accelerator."""

    name: str = "gpu-baseline"
    peak_teraops: float = 130.0
    kernel_launch_us: float = 5.0
    #: ResNet50-class inference sustains ~1/3 of tensor-core peak on a
    #: V100 even at large batch (published ~5.1K IPS at batch 128)
    max_utilization: float = 0.35
    #: batch size at which utilization reaches half of max
    half_occupancy_batch: float = 8.0
    jitter_sigma: float = 0.08  # lognormal sigma of run-to-run noise
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def utilization(self, batch: int) -> float:
        """Occupancy-limited efficiency, saturating with batch size."""
        occupancy = batch / (batch + self.half_occupancy_batch)
        return self.max_utilization * occupancy

    def layer_time_us(self, spec: LayerSpec, batch: int) -> float:
        """Deterministic part of one layer's execution time."""
        if spec.kind in (LayerKind.CONV, LayerKind.FC):
            ops = 2 * spec.macs * batch
            rate = self.peak_teraops * 1e12 * self.utilization(batch)
            return self.kernel_launch_us + ops / rate * 1e6
        # pooling / elementwise kernels are bandwidth-trivial but still
        # pay the launch
        return self.kernel_launch_us / 2

    def inference_latency_us(
        self, layers: list[LayerSpec], batch: int = 1, jitter: bool = True
    ) -> float:
        """End-to-end latency of one batch; jitter varies run to run."""
        base = sum(self.layer_time_us(layer, batch) for layer in layers)
        if not jitter:
            return base
        noise = self._rng.lognormal(mean=0.0, sigma=self.jitter_sigma)
        return base * noise

    def throughput_ips(
        self, layers: list[LayerSpec], batch: int, jitter: bool = False
    ) -> float:
        latency = self.inference_latency_us(layers, batch, jitter=jitter)
        return batch / (latency / 1e6)

    # ------------------------------------------------------------------
    def latency_samples(
        self, layers: list[LayerSpec], batch: int, runs: int
    ) -> np.ndarray:
        """Repeated-run latencies — nonzero variance, unlike the TSP."""
        return np.array(
            [
                self.inference_latency_us(layers, batch, jitter=True)
                for _ in range(runs)
            ]
        )
