"""Published comparator specifications used by the paper's evaluation.

The paper compares against Google TPU v3, Intel/Habana Goya, and NVIDIA
Volta V100 using their published figures [44], [1]; we encode those same
figures so the comparison benches can regenerate the paper's claims:

* 20.4K IPS batch-1 ResNet50 is ~2.5x Google TPU v3's large-batch
  inference and ~4x "other modern GPUs and accelerators";
* 49 us end-to-end batch-1 latency is ~5x better than Goya's 240 us;
* 820 TeraOps/s from 26.8 B transistors is ~30K ops/s/transistor versus
  V100's 130 TeraFlops from 21.1 B transistors (~6.2K).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AcceleratorSpec:
    """Published figures for one comparator chip."""

    name: str
    resnet50_ips: float | None  # best published ResNet50 inference IPS
    resnet50_batch: int | None  # batch size at that throughput
    batch1_latency_us: float | None  # batch-1 end-to-end latency
    peak_teraops: float  # peak mixed-precision TeraOps/s
    transistors: float
    process_nm: int
    die_mm2: float | None = None


#: ResNet50 inference figures as cited by the paper (MLPerf-era numbers).
TPU_V3 = AcceleratorSpec(
    name="Google TPU v3",
    resnet50_ips=8160.0,  # ~20.4K / 2.5 (the paper's 2.5x claim)
    resnet50_batch=128,
    batch1_latency_us=None,
    peak_teraops=123.0,
    transistors=11e9,
    process_nm=16,
)

GOYA = AcceleratorSpec(
    name="Habana Goya",
    resnet50_ips=15000.0,
    resnet50_batch=10,
    batch1_latency_us=240.0,  # the paper's Goya batch-1 figure
    peak_teraops=100.0,
    transistors=8e9,
    process_nm=16,
)

V100 = AcceleratorSpec(
    name="NVIDIA V100",
    resnet50_ips=5100.0,  # ~4x below the TSP at batch 1 comparisons
    resnet50_batch=128,
    batch1_latency_us=950.0,
    peak_teraops=130.0,  # mixed-precision tensor-core TFLOPS
    transistors=21.1e9,
    process_nm=12,
    die_mm2=815.0,
)

ALL_COMPARATORS = [TPU_V3, GOYA, V100]
