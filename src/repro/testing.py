"""Shared fixture helpers for the test and benchmark suites.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both need the same
chip configurations and deterministic RNG seeding; the factories live here
so the two conftests stay thin wrappers instead of drifting copies.  Kept
inside the package (rather than under ``tests/``) so the benchmark suite
can import it without path games.
"""

from __future__ import annotations

import numpy as np

from .config import ArchConfig, groq_tsp_v1, small_test_chip

#: every suite derives its random data from this seed unless a test
#: deliberately varies it — keeps failures reproducible across suites
DEFAULT_TEST_SEED = 1234


def make_full_config() -> ArchConfig:
    """The paper's first-generation TSP."""
    return groq_tsp_v1()


def make_small_config() -> ArchConfig:
    """The fast 64-lane test chip used by most tests."""
    return small_test_chip()


def make_rng(seed: int = DEFAULT_TEST_SEED) -> np.random.Generator:
    """The suites' deterministic random source."""
    return np.random.default_rng(seed)
