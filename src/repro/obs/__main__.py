"""Profile a workload script: ``python -m repro.obs [script.py]``.

Runs the given Python script with auto-telemetry enabled — every
:class:`~repro.sim.chip.TspChip` the script constructs gets a
:class:`~repro.obs.TelemetryCollector` attached — then writes, per chip:

* ``BENCH_obs.json`` — the bottleneck-attribution report (schema
  ``tsp-obs/1``);
* ``trace_obs.json`` — a Perfetto/Chrome trace with true instruction
  durations, counter tracks, and stream dataflow arrows;

and prints the human-readable attribution summary.

Scripts that never instantiate a simulator chip (pure performance models
such as ``examples/resnet50_inference.py``) still run to completion;
the profiler then falls back to a built-in demo workload — a small
matmul+ReLU program on the simulator — so the telemetry artifacts always
demonstrate a real collected run.
"""

from __future__ import annotations

import argparse
import runpy
import sys

from .attribution import attribute, render_report, write_report
from .counters import AutoTelemetry
from .trace import PerfettoTraceBuilder, write_trace


def _demo_collectors(window_cycles: int):
    """Built-in fallback workload: matmul + ReLU on a small chip."""
    import numpy as np

    from ..compiler import StreamProgramBuilder, execute
    from ..config import small_test_chip

    config = small_test_chip()
    rng = np.random.default_rng(1234)
    k = m = 64
    w = rng.integers(-8, 8, (k, m)).astype(np.int8)
    x = rng.integers(-8, 8, (4, k)).astype(np.int8)
    g = StreamProgramBuilder(config)
    r = g.relu(g.matmul(w, g.constant_tensor("x", x)))
    g.write_back(r, name="r")
    compiled = g.compile()
    auto = AutoTelemetry(window_cycles=window_cycles)
    with auto:
        execute(compiled)
    return auto, [compiled.intent] * len(auto.collectors)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a workload script with chip telemetry attached "
        "and emit BENCH_obs.json + a Perfetto trace + a bottleneck report.",
    )
    parser.add_argument(
        "script", nargs="?", default=None,
        help="Python script to profile (run as __main__); omit to run the "
        "built-in demo workload",
    )
    parser.add_argument(
        "script_args", nargs=argparse.REMAINDER,
        help="arguments passed through to the script",
    )
    parser.add_argument(
        "--json", default="BENCH_obs.json", metavar="PATH",
        help="attribution JSON artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--trace", default="trace_obs.json", metavar="PATH",
        help="Perfetto trace artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--window", type=int, default=256, metavar="CYCLES",
        help="counter window width in cycles (default: %(default)s)",
    )
    parser.add_argument(
        "--top-k", type=int, default=8, metavar="K",
        help="busiest slices to report (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    auto = AutoTelemetry(window_cycles=args.window)
    intents = None
    if args.script is not None:
        saved_argv = sys.argv
        sys.argv = [args.script, *args.script_args]
        try:
            auto.install()
            runpy.run_path(args.script, run_name="__main__")
        finally:
            auto.uninstall()
            sys.argv = saved_argv
        if not auto.collectors:
            print(
                f"note: {args.script} created no simulator chips; "
                "profiling the built-in demo workload instead\n"
            )
    if not auto.collectors:
        auto, intents = _demo_collectors(args.window)

    builder = PerfettoTraceBuilder()
    reports = []
    for i, collector in enumerate(auto.collectors):
        builder.add_chip(
            name=collector.name or f"chip{i}",
            pid=i,
            collector=collector,
            intent=intents[i] if intents else None,
        )
        report = attribute(
            collector, top_k=args.top_k,
            name=collector.name or f"chip{i}",
        )
        reports.append(report)
        print(render_report(report))

    payload = reports[0] if len(reports) == 1 else {
        "schema": reports[0]["schema"], "chips": reports,
    }
    write_report(payload, args.json)
    write_trace(builder.build(), args.trace)
    print(f"wrote {args.json} and {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
