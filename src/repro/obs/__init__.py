"""Chip-wide telemetry: counters, Perfetto traces, bottleneck attribution.

Three layers, all exact under fast-forward simulation:

* :mod:`repro.obs.counters` — the hierarchical per-unit counter registry
  (:class:`TelemetryCollector`), windowed and integrated analytically
  across quiescent-span skips so dense and fast-forward runs produce
  bit-identical telemetry.
* :mod:`repro.obs.trace` — :class:`PerfettoTraceBuilder`, joining
  compile-time schedule intent with runtime dispatch into Chrome/Perfetto
  trace JSON (true durations, counter tracks, producer→consumer flows).
* :mod:`repro.obs.attribution` — :func:`attribute` /
  :func:`render_report`, the per-phase roofline + top-slices + stall
  taxonomy report behind ``python -m repro.obs``.
* :mod:`repro.obs.rtrace` — request-scoped distributed tracing across
  the serving stack (:class:`RequestTracer`, :class:`TraceContext`),
  anchoring the chip cycle domain to the host µs domain.
* :mod:`repro.obs.metrics` — bounded-memory serving metrics
  (:class:`LatencyHistogram`, :class:`SloTracker`,
  :class:`MetricsExporter`) behind ``python -m repro.obs.metrics``.
"""

from .attribution import attribute, render_report, write_report
from .counters import AutoTelemetry, TelemetryCollector
from .metrics import (
    LatencyHistogram,
    MetricsExporter,
    SloTracker,
    percentile,
)
from .rtrace import RequestTracer, Span, TraceContext
from .trace import (
    HostSpan,
    PerfettoTraceBuilder,
    instruction_duration,
    write_trace,
)

__all__ = [
    "AutoTelemetry",
    "HostSpan",
    "LatencyHistogram",
    "MetricsExporter",
    "PerfettoTraceBuilder",
    "RequestTracer",
    "SloTracker",
    "Span",
    "TelemetryCollector",
    "TraceContext",
    "attribute",
    "instruction_duration",
    "percentile",
    "render_report",
    "write_report",
    "write_trace",
]
