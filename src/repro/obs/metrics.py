"""Bounded-memory serving metrics: histograms, SLO tracking, export.

The serving layer used to keep one Python float per completed request —
O(requests) memory that cannot survive the "millions of users" target.
This module replaces that with the datacenter-standard kit:

* :class:`LatencyHistogram` — an HDR-style log-bucketed histogram:
  power-of-two octaves split into ``sub_buckets`` linear sub-buckets, so
  any recorded value lands in a bucket whose upper bound overstates it by
  at most ``1/sub_buckets`` (6.25% at the default 16).  Memory is
  O(buckets) regardless of traffic; two histograms with the same scheme
  **merge** by adding counts (associative and commutative, which the
  property tests assert), so per-worker or per-window histograms roll up
  exactly.
* :class:`SloTracker` — per-model latency deadline targets with
  hit / violation / shed counters, mirrored into the serving
  :class:`~repro.obs.counters.TelemetryCollector` registry so SLO
  attainment shows up next to every other serve counter.
* :class:`MetricsExporter` — one-pass Prometheus-text + JSON snapshots
  of an :class:`~repro.serve.InferenceServer`: request counters, latency
  histograms (cumulative ``le`` buckets), SLO attainment, cache, pool,
  batcher, span-buffer accounting, the whole serve counter registry, and
  any chip telemetry collectors handed to it.

``python -m repro.obs.metrics`` stands up a small serve session (with
request tracing on, optionally pipeline-sharded over ``--chips`` chips),
fires a burst of requests, and writes the metrics snapshot in both
formats plus the unified Perfetto trace; ``--overhead-gate`` instead
measures the wall-clock cost of tracing on the serve workload and folds
the ratio into ``BENCH_obs.json``, failing if it exceeds the gate.
"""

from __future__ import annotations

import json
import math
import threading
import time

import numpy as np


def percentile(values, q: float) -> float:
    """Exact percentile of a raw value list (0 for an empty list).

    The single shared helper the serving layer used to duplicate; kept
    for code that still has raw samples (tests, benchmarks).  The hot
    path uses :class:`LatencyHistogram` quantile *bounds* instead.
    """
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class LatencyHistogram:
    """Log-bucketed latency histogram with mergeable buckets.

    Values are recorded in seconds and bucketed in microseconds.  The
    bucket index of a value ``v`` (µs) is ``octave * sub_buckets + j``
    where ``octave = floor(log2(v / min_us))`` and ``j`` linearly splits
    the octave ``[min_us * 2^o, min_us * 2^(o+1))`` into ``sub_buckets``
    equal slices.  Quantiles return the containing bucket's **upper
    bound**, so the reported pXX is always >= the true pXX and
    overstates it by at most a factor of ``1 + 1/sub_buckets``; exact
    ``count`` / ``sum`` / ``min`` / ``max`` are tracked alongside.

    Not internally locked: the server records under its own lock and
    hands copies out via :meth:`copy`.
    """

    __slots__ = (
        "min_us", "max_us", "sub_buckets", "n_buckets",
        "counts", "count", "sum_us", "min_us_seen", "max_us_seen",
    )

    def __init__(
        self,
        min_us: float = 1.0,
        max_us: float = 64e6,
        sub_buckets: int = 16,
    ) -> None:
        if min_us <= 0 or max_us <= min_us:
            raise ValueError("need 0 < min_us < max_us")
        if sub_buckets < 1:
            raise ValueError("sub_buckets must be >= 1")
        self.min_us = float(min_us)
        self.max_us = float(max_us)
        self.sub_buckets = int(sub_buckets)
        octaves = max(1, math.ceil(math.log2(max_us / min_us)))
        self.n_buckets = octaves * self.sub_buckets
        self.counts = [0] * self.n_buckets
        self.count = 0
        self.sum_us = 0.0
        self.min_us_seen = math.inf
        self.max_us_seen = 0.0

    # ------------------------------------------------------------------
    def _index(self, v_us: float) -> int:
        x = v_us / self.min_us
        if x < 1.0:
            return 0
        _, exp = math.frexp(x)  # x = m * 2**exp, m in [0.5, 1)
        octave = exp - 1
        scaled = x / (1 << octave)  # in [1, 2)
        j = min(int((scaled - 1.0) * self.sub_buckets), self.sub_buckets - 1)
        return min(octave * self.sub_buckets + j, self.n_buckets - 1)

    def bucket_upper_us(self, index: int) -> float:
        """Exclusive upper bound of one bucket, in microseconds."""
        octave, j = divmod(index, self.sub_buckets)
        return self.min_us * (1 << octave) * (1.0 + (j + 1) / self.sub_buckets)

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        v_us = max(seconds, 0.0) * 1e6
        self.counts[self._index(v_us)] += 1
        self.count += 1
        self.sum_us += v_us
        if v_us < self.min_us_seen:
            self.min_us_seen = v_us
        if v_us > self.max_us_seen:
            self.max_us_seen = v_us

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into self (in place).  Associative: merging
        per-worker histograms in any grouping yields identical state."""
        if (
            other.min_us != self.min_us
            or other.max_us != self.max_us
            or other.sub_buckets != self.sub_buckets
        ):
            raise ValueError("cannot merge histograms with different schemes")
        for i, n in enumerate(other.counts):
            if n:
                self.counts[i] += n
        self.count += other.count
        self.sum_us += other.sum_us
        self.min_us_seen = min(self.min_us_seen, other.min_us_seen)
        self.max_us_seen = max(self.max_us_seen, other.max_us_seen)
        return self

    def copy(self) -> "LatencyHistogram":
        fresh = LatencyHistogram(self.min_us, self.max_us, self.sub_buckets)
        fresh.merge(self)
        return fresh

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Upper bound (seconds) of the q-quantile, 0 when empty.

        ``quantile(0.5) >= true_p50`` and
        ``quantile(0.5) <= true_p50 * (1 + 1/sub_buckets)`` — the exact
        bound the bucket scheme guarantees (clamped to the exact max).
        """
        if self.count == 0:
            return 0.0
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, n in enumerate(self.counts):
            if not n:
                continue
            seen += n
            if seen >= rank:
                bound = self.bucket_upper_us(index)
                return min(bound, self.max_us_seen) / 1e6
        return self.max_us_seen / 1e6

    @property
    def mean_s(self) -> float:
        return (self.sum_us / self.count) / 1e6 if self.count else 0.0

    @property
    def max_s(self) -> float:
        return self.max_us_seen / 1e6

    @property
    def min_s(self) -> float:
        return 0.0 if self.count == 0 else self.min_us_seen / 1e6

    # ------------------------------------------------------------------
    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le_seconds, cumulative_count)`` pairs.

        Empty buckets are elided except where the cumulative count
        changes; always ends with ``(inf, count)``.
        """
        out: list[tuple[float, int]] = []
        running = 0
        for index, n in enumerate(self.counts):
            if n:
                running += n
                out.append((self.bucket_upper_us(index) / 1e6, running))
        out.append((math.inf, self.count))
        return out

    def stats_ms(self) -> dict:
        """The rollup the server's ``stats()`` publishes per model."""
        return {
            "n": self.count,
            "p50_ms": round(self.quantile(0.5) * 1e3, 3),
            "p99_ms": round(self.quantile(0.99) * 1e3, 3),
            "p999_ms": round(self.quantile(0.999) * 1e3, 3),
            "mean_ms": round(self.mean_s * 1e3, 3),
            "max_ms": round(self.max_s * 1e3, 3),
        }

    def snapshot(self) -> dict:
        """JSON-able image: scheme, exact aggregates, sparse buckets."""
        return {
            "scheme": {
                "min_us": self.min_us,
                "max_us": self.max_us,
                "sub_buckets": self.sub_buckets,
            },
            "count": self.count,
            "sum_ms": round(self.sum_us / 1e3, 3),
            "buckets": {
                str(i): n for i, n in enumerate(self.counts) if n
            },
            **self.stats_ms(),
        }


# ----------------------------------------------------------------------
class SloTracker:
    """Per-model latency SLOs: deadline targets and attainment counters.

    ``observe`` classifies one completed request against its model's
    target; ``shed`` counts a request the server refused (rejected at
    submit).  Counters mirror into the serving telemetry registry under
    ``slo:<model>`` so they ride the same snapshot/window machinery as
    every other serve counter.  Models without a target are untracked.
    """

    def __init__(
        self,
        targets: dict[str, float] | None = None,
        default_target_s: float | None = None,
        registry=None,
    ) -> None:
        self.targets = dict(targets or {})
        self.default_target_s = default_target_s
        self.registry = registry
        self._lock = threading.Lock()
        #: model -> {"hits": n, "violations": n, "shed": n}
        self.counts: dict[str, dict[str, int]] = {}

    def target_for(self, model: str) -> float | None:
        return self.targets.get(model, self.default_target_s)

    def _bump(self, model: str, kind: str, us: int) -> None:
        with self._lock:
            counter = self.counts.setdefault(
                model, {"hits": 0, "violations": 0, "shed": 0}
            )
            counter[kind] += 1
        if self.registry is not None:
            self.registry.count(f"slo:{model}", kind, us)

    def observe(
        self, model: str, total_s: float, us: int = 0, ok: bool = True
    ) -> bool | None:
        """Classify one finished request; None when the model is untracked.

        A failed request can never hit its SLO, whatever its latency.
        """
        target = self.target_for(model)
        if target is None:
            return None
        hit = ok and total_s <= target
        self._bump(model, "hits" if hit else "violations", us)
        return hit

    def shed(self, model: str, us: int = 0) -> None:
        """One request rejected before entering the queue."""
        if self.target_for(model) is None:
            return
        self._bump(model, "shed", us)

    def snapshot(self) -> dict:
        """Per-model targets, counters, and attainment ratio."""
        with self._lock:
            counts = {m: dict(c) for m, c in self.counts.items()}
        out = {}
        for model, c in sorted(counts.items()):
            finished = c["hits"] + c["violations"]
            out[model] = {
                "target_ms": round(self.target_for(model) * 1e3, 3),
                **c,
                "attainment": round(c["hits"] / finished, 4)
                if finished else 1.0,
            }
        return out


# ----------------------------------------------------------------------
def _prom_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels(**labels) -> str:
    body = ",".join(
        f'{k}="{_prom_escape(v)}"' for k, v in labels.items() if v is not None
    )
    return "{" + body + "}" if body else ""


class MetricsExporter:
    """One-pass Prometheus-text + JSON snapshots of a serving stack.

    ``snapshot()`` reads the server rollup, the latency histograms, the
    SLO tracker, the span accounting, the whole serve counter registry,
    and any extra chip :class:`~repro.obs.TelemetryCollector` s — each
    surface once, under its own lock — and both renderers work off that
    one image, so the two formats can never disagree.
    """

    def __init__(self, server, collectors: list | None = None) -> None:
        self.server = server
        self.collectors = list(collectors or [])

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        server = self.server
        payload = {
            "schema": "tsp-serve-metrics/1",
            "stats": server.stats(),
            "histograms": {
                model: {
                    phase: hist.snapshot()
                    for phase, hist in phases.items()
                }
                for model, phases in server.histogram_snapshot().items()
            },
            "slo": server.slo.snapshot(),
            "registry": {
                "totals": server.registry.totals(),
                "scalars": server.registry.snapshot()["scalars"],
            },
            "tracing": (
                server.tracer.snapshot()
                if server.tracer is not None else None
            ),
            "chips": [
                {
                    "name": collector.name or f"chip{i}",
                    "cycles": collector.cycles,
                    "totals": collector.totals(),
                }
                for i, collector in enumerate(self.collectors)
            ],
        }
        return payload

    # ------------------------------------------------------------------
    def prometheus_text(self, snapshot: dict | None = None) -> str:
        """Render one snapshot in the Prometheus text exposition format."""
        snap = snapshot or self.snapshot()
        stats = snap["stats"]
        lines: list[str] = []

        def metric(name, mtype, help_text, samples):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")
            for labels, value in samples:
                if isinstance(value, float):
                    value = format(value, ".9g")
                lines.append(f"{name}{labels} {value}")

        requests = stats["requests"]
        metric(
            "tsp_serve_requests_total", "counter",
            "Requests by terminal state.",
            [
                (_labels(state=state), requests[state])
                for state in (
                    "submitted", "completed", "failed", "retried", "shed"
                )
                if state in requests  # retried/shed: newer servers only
            ],
        )
        hist_samples: list[tuple[str, object]] = []
        sum_samples: list[tuple[str, object]] = []
        count_samples: list[tuple[str, object]] = []
        for model, phases in sorted(snap["histograms"].items()):
            hist = phases["total"]
            for le, cum in _cumulative_from_snapshot(hist):
                le_text = "+Inf" if math.isinf(le) else format(le, ".9g")
                hist_samples.append(
                    (_labels(model=model, le=le_text), cum)
                )
            sum_samples.append(
                (_labels(model=model), hist["sum_ms"] / 1e3)
            )
            count_samples.append((_labels(model=model), hist["count"]))
        lines.append(
            "# HELP tsp_serve_latency_seconds "
            "End-to-end request latency (log-bucketed upper bounds)."
        )
        lines.append("# TYPE tsp_serve_latency_seconds histogram")
        for labels, value in hist_samples:
            lines.append(f"tsp_serve_latency_seconds_bucket{labels} {value}")
        for labels, value in sum_samples:
            lines.append(
                f"tsp_serve_latency_seconds_sum{labels} "
                f"{format(value, '.9g')}"
            )
        for labels, value in count_samples:
            lines.append(f"tsp_serve_latency_seconds_count{labels} {value}")

        slo_samples = []
        for model, slo in sorted(snap["slo"].items()):
            for kind in ("hits", "violations", "shed"):
                slo_samples.append(
                    (_labels(model=model, result=kind), slo[kind])
                )
        if slo_samples:
            metric(
                "tsp_serve_slo_requests_total", "counter",
                "Requests by SLO outcome.", slo_samples,
            )
            metric(
                "tsp_serve_slo_target_seconds", "gauge",
                "Per-model SLO deadline target.",
                [
                    (_labels(model=model), slo["target_ms"] / 1e3)
                    for model, slo in sorted(snap["slo"].items())
                ],
            )
        cache = stats["cache"]
        metric(
            "tsp_serve_cache_events_total", "counter",
            "Program cache hits/misses/evictions.",
            [
                (_labels(kind=k), cache[k])
                for k in ("hits", "misses", "evictions")
            ],
        )
        metric(
            "tsp_serve_cache_resident", "gauge",
            "Programs resident in the cache.",
            [(_labels(), cache["resident"])],
        )
        pool = stats["pool"]
        metric(
            "tsp_serve_pool_workers", "gauge",
            "Pool workers by health accounting.",
            [
                (_labels(state=state), pool[key])
                for state, key in (
                    ("configured", "workers"),
                    ("alive", "alive"),
                    ("capacity", "capacity"),
                    ("quarantined", "quarantined"),
                    ("spares", "spares"),
                )
                if key in pool  # health fields: newer servers only
            ],
        )
        if "repaired" in pool:
            metric(
                "tsp_serve_pool_repairs_total", "counter",
                "Quarantined hardware returned to service.",
                [(_labels(), pool["repaired"])],
            )
        metric(
            "tsp_serve_batches_total", "counter",
            "Batches released, by trigger.",
            [
                (_labels(trigger=t), n)
                for t, n in sorted(stats["batcher"]["released"].items())
            ],
        )
        spans = stats["spans"]
        metric(
            "tsp_serve_spans", "gauge",
            "Span ring-buffer accounting (recorded/dropped/capacity).",
            [
                (_labels(kind="recorded"), spans["recorded"]),
                (_labels(kind="dropped"), spans["dropped"]),
                (_labels(kind="capacity"), spans["max_spans"]),
            ],
        )
        registry_samples = [
            (_labels(unit=unit, counter=counter), total)
            for unit, counters in sorted(snap["registry"]["totals"].items())
            for counter, total in sorted(counters.items())
        ]
        if registry_samples:
            metric(
                "tsp_serve_registry_total", "counter",
                "Serving telemetry registry totals (unit x counter).",
                registry_samples,
            )
        scalar_samples = [
            (_labels(unit=unit, counter=counter), value)
            for unit, counters in sorted(snap["registry"]["scalars"].items())
            for counter, value in sorted(counters.items())
        ]
        if scalar_samples:
            metric(
                "tsp_serve_registry_scalar", "gauge",
                "Serving registry high/low-water scalars.",
                scalar_samples,
            )
        chip_samples = [
            (
                _labels(chip=chip["name"], unit=unit, counter=counter),
                total,
            )
            for chip in snap["chips"]
            for unit, counters in sorted(chip["totals"].items())
            for counter, total in sorted(counters.items())
        ]
        if chip_samples:
            metric(
                "tsp_chip_counter_total", "counter",
                "Chip telemetry counter totals.", chip_samples,
            )
        return "\n".join(lines) + "\n"

    def write(self, prom_path: str | None, json_path: str | None) -> dict:
        snap = self.snapshot()
        if json_path:
            with open(json_path, "w") as handle:
                json.dump(snap, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if prom_path:
            with open(prom_path, "w") as handle:
                handle.write(self.prometheus_text(snap))
        return snap


def _cumulative_from_snapshot(hist: dict) -> list[tuple[float, int]]:
    """Rebuild cumulative ``le`` pairs from a histogram snapshot dict."""
    scheme = hist["scheme"]
    sub = scheme["sub_buckets"]
    min_us = scheme["min_us"]
    running = 0
    out = []
    for index in sorted(hist["buckets"], key=int):
        running += hist["buckets"][index]
        octave, j = divmod(int(index), sub)
        upper = min_us * (1 << octave) * (1.0 + (j + 1) / sub)
        out.append((upper / 1e6, running))
    out.append((math.inf, hist["count"]))
    return out


# ----------------------------------------------------------------------
# `python -m repro.obs.metrics` — demo exporter + tracing-overhead gate
# ----------------------------------------------------------------------
def _build_demo_models(config, seed: int, n_chips: int):
    """A small served model mix (trained CNN + transformer FFN)."""
    from ..nn import make_shapes, make_small_cnn, train
    from ..nn.transformer import TransformerConfig
    from ..serve.models import (
        CnnServeModel,
        ShardedCnnServeModel,
        TransformerMlpServeModel,
    )

    data = make_shapes(
        n_train=128, n_test=32, image_size=8, n_classes=3, noise=0.08,
        seed=seed,
    )
    cnn = make_small_cnn(3, channels=4, image_size=8, seed=seed)
    train(cnn, data, epochs=2, lr=0.1, seed=seed)
    if n_chips > 1:
        cnn_model = ShardedCnnServeModel(
            "cnn", cnn, config, calibration=data.x_train[:32],
            n_chips=n_chips, max_vectors_per_program=32,
        )
    else:
        cnn_model = CnnServeModel(
            "cnn", cnn, config, calibration=data.x_train[:32],
            max_vectors_per_program=32,
        )
    mlp = TransformerMlpServeModel(
        "mlp",
        TransformerConfig(
            d_model=32, n_heads=4, d_ff=64, seq_len=16, n_layers=1,
            vocab=128,
        ),
        config,
        seed=seed,
        max_vectors_per_program=16,
    )
    return [cnn_model, mlp], data


def _run_session(
    config, models, data, *, n_requests, workers, n_chips, seed,
    tracing, chip_events=False, slos=None, max_spans=4096,
):
    """Fire a burst of requests at a server; returns (server, wall_s).

    The server is closed but not discarded: the exporter and trace
    writer read it afterwards.
    """
    from ..serve import BatchPolicy, InferenceServer

    rng = np.random.default_rng(seed)
    server = InferenceServer(
        config, models,
        n_workers=workers,
        n_chips=n_chips,
        default_policy=BatchPolicy(max_batch=4, max_delay_s=0.002),
        record_spans=True,
        tracing=tracing,
        trace_chip_events=chip_events,
        slos=slos,
        max_spans=max_spans,
    )
    images = data.x_test
    t0 = time.monotonic()
    futures = []
    for i in range(n_requests):
        futures.append(server.submit("cnn", images[i % len(images)]))
        futures.append(server.submit("mlp", rng.standard_normal(32)))
    for future in futures:
        future.result(timeout=300.0)
    wall_s = time.monotonic() - t0
    server.close()
    return server, wall_s


def _overhead_gate(args) -> int:
    """Paired traced/untraced serve trials -> BENCH_obs.json gate."""
    import gc

    from ..config import small_test_chip

    config = small_test_chip()
    models, data = _build_demo_models(config, args.seed, n_chips=1)
    ratios = []
    pairs = []
    gc_was_enabled = gc.isenabled()
    try:
        for trial in range(args.trials):
            gc.collect()
            gc.disable()
            _, plain_s = _run_session(
                config, models, data,
                n_requests=args.requests, workers=args.workers,
                n_chips=1, seed=args.seed + trial, tracing=False,
            )
            _, traced_s = _run_session(
                config, models, data,
                n_requests=args.requests, workers=args.workers,
                n_chips=1, seed=args.seed + trial, tracing=True,
            )
            if gc_was_enabled:
                gc.enable()
            ratios.append(traced_s / plain_s)
            pairs.append(
                {"plain_s": round(plain_s, 4), "traced_s": round(traced_s, 4)}
            )
            print(
                f"  trial {trial + 1}/{args.trials}: plain {plain_s:.3f}s "
                f"traced {traced_s:.3f}s ratio {ratios[-1]:.3f}",
                flush=True,
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    median_ratio = float(np.median(ratios))
    block = {
        "workload": {
            "requests": 2 * args.requests,
            "workers": args.workers,
            "trials": args.trials,
            "seed": args.seed,
        },
        "pairs": pairs,
        "ratios": [round(r, 4) for r in ratios],
        "median_ratio": round(median_ratio, 4),
        "gate": args.gate,
    }
    try:
        with open(args.bench_json) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = {"schema": "tsp-obs/1"}
    payload["tracing_overhead"] = block
    with open(args.bench_json, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"  tracing overhead: median ratio {median_ratio:.3f} "
        f"(gate <= {args.gate}) -> {args.bench_json}"
    )
    if median_ratio > args.gate:
        print(
            f"  GATE FAILED: tracing overhead {median_ratio:.3f}x exceeds "
            f"{args.gate}x"
        )
        return 1
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.metrics",
        description="Serve a demo workload with request tracing on and "
        "export the metrics snapshot (Prometheus text + JSON) and the "
        "unified Perfetto trace; or gate the tracing overhead.",
    )
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per model (default 8)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--chips", type=int, default=1,
                        help="chips per worker; >1 serves the CNN "
                        "pipeline-sharded over a C2C ring")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--slo-ms", type=float, default=2000.0,
                        help="per-model latency SLO target (default "
                        "2000 ms; generous — these are simulated chips)")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="write the Prometheus text snapshot here")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the JSON snapshot here")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write the unified Perfetto trace here")
    parser.add_argument("--max-spans", type=int, default=4096)
    parser.add_argument("--overhead-gate", action="store_true",
                        help="measure tracing overhead on the serve "
                        "workload and gate it instead of exporting")
    parser.add_argument("--bench-json", default="BENCH_obs.json",
                        help="artifact the overhead block merges into "
                        "(default: %(default)s)")
    parser.add_argument("--gate", type=float, default=1.10,
                        help="max traced/untraced ratio (default 1.10)")
    parser.add_argument("--trials", type=int, default=3)
    args = parser.parse_args(argv)

    if args.overhead_gate:
        print(
            f"tracing-overhead gate: {2 * args.requests} requests x "
            f"{args.trials} paired trials ...", flush=True,
        )
        return _overhead_gate(args)

    from ..config import small_test_chip

    config = small_test_chip()
    print("training demo models ...", flush=True)
    models, data = _build_demo_models(config, args.seed, args.chips)
    print(
        f"serving {2 * args.requests} requests on {args.workers} workers "
        f"x {args.chips} chip(s), tracing on ...", flush=True,
    )
    server, wall_s = _run_session(
        config, models, data,
        n_requests=args.requests, workers=args.workers,
        n_chips=args.chips, seed=args.seed,
        tracing=True, chip_events=args.trace is not None,
        slos={m.name: args.slo_ms / 1e3 for m in models},
        max_spans=args.max_spans,
    )
    exporter = MetricsExporter(server)
    snap = exporter.write(args.prom, args.json)
    print(f"  wall time   {wall_s * 1e3:8.1f} ms")
    for model, lat in sorted(snap["stats"]["latency"].items()):
        print(
            f"  {model:<8} n={lat['n']:<4} p50={lat['p50_ms']:8.2f} ms  "
            f"p99={lat['p99_ms']:8.2f} ms"
        )
    for model, slo in sorted(snap["slo"].items()):
        print(
            f"  slo:{model:<8} target {slo['target_ms']:.0f} ms  "
            f"attainment {slo['attainment']:.0%} "
            f"({slo['hits']} hit / {slo['violations']} missed / "
            f"{slo['shed']} shed)"
        )
    tracing = snap["tracing"] or {}
    print(
        f"  spans       {tracing.get('recorded', 0)} recorded, "
        f"{tracing.get('dropped', 0)} dropped "
        f"(cap {tracing.get('max_spans', 0)})"
    )
    if args.trace:
        from .trace import PerfettoTraceBuilder, write_trace

        builder = PerfettoTraceBuilder(clock_ghz=config.clock_ghz)
        builder.add_request_trace(server.tracer)
        write_trace(builder.build(), args.trace)
        print(f"  trace       {args.trace}")
    for label, path in (("prometheus", args.prom), ("json", args.json)):
        if path:
            print(f"  {label:<11} {path}")
    if not args.prom and not args.json:
        print()
        print(exporter.prometheus_text(snap))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
