"""The chip-wide telemetry counter registry.

A :class:`TelemetryCollector` is the observability analogue of the paper's
determinism argument: because every state transition on the TSP happens at
a compiler-known cycle, *telemetry does not need to sample* — every counter
increment can be attributed to an exact cycle, bucketed into fixed-width
windows, and the result is a fact, not an estimate.

The registry is hierarchical: counters are keyed ``domain:unit`` →
``counter name`` → ``window index`` → value, e.g.

    mem:MEM_W3   read_bytes / write_bytes / bank_conflicts
    icu:MEM_W3   dispatches / dispatch_cycles / stall_cycles /
                 parked_cycles / ifetch_bytes
    mxm:MXM_E.plane0   macc_ops / weight_bytes
    vxm:alu5     alu_ops
    sxm:SXM_E    bytes
    c2c:C2C_E.link0    sent_bytes / received_bytes
    srf:E, srf:W       hop_bytes / occupancy_cycles

plus scalar high/low-water marks (instruction-queue depth).

**Exactness under fast-forward.**  Counters fall into two classes:

* *Transition-attributed* counters (dispatches, SRAM bytes, MACCs, ALU
  ops, stall/parked spans) are incremented at state transitions —
  dispatches and scheduled events — which the fast-forward core executes
  at exactly the same cycles as the dense core (a skipped span contains no
  transition by construction of ``next_active_cycle``).  Multi-cycle spans
  (a ``NOP 500``'s occupancy, a parked ``Sync``) are known in full at the
  transition that starts them, so :meth:`count_span` distributes them over
  windows in closed form.
* *Flow-integrated* counters (stream hop bytes, per-direction SRF
  occupancy) change on every cycle a value is in flight.  During a bulk
  ``step_n(n)`` skip the per-cycle totals form a non-increasing step
  function of the per-value remaining-hop counts, which
  :meth:`on_stream_shift` integrates analytically into the same windows
  the dense path fills one cycle at a time.

Both classes are therefore bit-identical between the dense and
fast-forward cores — a property ``repro.verify.lockstep`` asserts on every
compiled program in the fuzz corpus.

Collectors are opt-in: a chip with no collector attached executes zero
telemetry code beyond one ``is not None`` test per instrumentation site
(and none per cycle).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..arch.power import ActivityCounts

# registry keys of the four SRF counters — the only ones touched on every
# live cycle, so the hot paths below pre-resolve their buckets
_SRF_E_HOP = ("srf:E", "hop_bytes")
_SRF_W_HOP = ("srf:W", "hop_bytes")
_SRF_E_OCC = ("srf:E", "occupancy_cycles")
_SRF_W_OCC = ("srf:W", "occupancy_cycles")


class TelemetryCollector:
    """Hierarchical per-unit perf counters in fixed-width cycle windows.

    Attach to a chip with :meth:`~repro.sim.chip.TspChip.attach_telemetry`;
    every instrumentation hook in the simulator feeds it.  One collector
    is meant to observe one chip; cycle numbering restarts at 0 on every
    ``run()``, so windows of back-to-back runs on the same chip alias onto
    each other (totals stay exact; attach a fresh collector per run when
    per-window data matters).
    """

    def __init__(
        self, window_cycles: int = 256, name: str | None = None
    ) -> None:
        if window_cycles < 1:
            raise ValueError("window_cycles must be >= 1")
        self.window_cycles = window_cycles
        self.name = name
        #: (unit, counter) -> {window index -> amount}
        self._windows: dict[tuple[str, str], dict[int, int]] = {}
        #: (unit, counter) -> running total (== sum of the windows)
        self._totals: dict[tuple[str, str], int] = {}
        #: (unit, counter) -> extremum scalars (queue depth marks)
        self._high: dict[tuple[str, str], int] = {}
        self._low: dict[tuple[str, str], int] = {}
        #: observed cycles, accumulated by ``on_run_end``
        self.cycles = 0
        #: (cycle, IcuId, Instruction) per dispatch, for the trace builder
        self.dispatch_log: list[tuple] = []
        # hot-path caches: pre-resolved (key, bucket) slots for the
        # counters touched on every dispatch and every live SRF cycle,
        # so those hooks skip :meth:`count`'s key construction + lookups
        self._dispatch_state: dict = {}
        self._icu_state: dict = {}
        self._mem_state: dict = {}
        self._srf_eh: dict[int, int] | None = None
        self._srf_wh: dict[int, int] | None = None
        self._srf_eo: dict[int, int] | None = None
        self._srf_wo: dict[int, int] | None = None
        # bound at attach time (used by the trace/attribution layers)
        self.config = None
        self.floorplan = None
        self.timing = None

    # ------------------------------------------------------------------
    def bind(self, chip) -> None:
        """Remember the observed chip's geometry and timing model."""
        self.config = chip.config
        self.floorplan = chip.floorplan
        self.timing = chip.timing

    # ------------------------------------------------------------------
    # primitive accumulation
    # ------------------------------------------------------------------
    def _bucket(self, key: tuple[str, str]) -> dict[int, int]:
        """Resolve (registering if new) the window dict of one counter."""
        buckets = self._windows.get(key)
        if buckets is None:
            buckets = self._windows[key] = {}
            self._totals[key] = 0
        return buckets

    def count(self, unit: str, counter: str, cycle: int, amount: int = 1) -> None:
        """Attribute ``amount`` to the window containing ``cycle``."""
        key = (unit, counter)
        window = cycle // self.window_cycles
        buckets = self._windows.get(key)
        if buckets is None:
            buckets = self._windows[key] = {}
            self._totals[key] = 0
        buckets[window] = buckets.get(window, 0) + amount
        self._totals[key] += amount

    def count_span(
        self,
        unit: str,
        counter: str,
        start_cycle: int,
        n_cycles: int,
        per_cycle: int = 1,
    ) -> None:
        """Attribute ``per_cycle`` to each of ``n_cycles`` starting at
        ``start_cycle``, distributed over windows in closed form.

        Bit-identical to calling :meth:`count` once per covered cycle —
        the discipline that keeps multi-cycle spans exact when the
        fast-forward core crosses them without visiting each cycle.
        """
        if n_cycles <= 0 or per_cycle == 0:
            return
        key = (unit, counter)
        width = self.window_cycles
        buckets = self._windows.get(key)
        if buckets is None:
            buckets = self._windows[key] = {}
            self._totals[key] = 0
        first = start_cycle // width
        last = (start_cycle + n_cycles - 1) // width
        if first == last:
            buckets[first] = buckets.get(first, 0) + n_cycles * per_cycle
        else:
            head = (first + 1) * width - start_cycle
            buckets[first] = buckets.get(first, 0) + head * per_cycle
            full = width * per_cycle
            for w in range(first + 1, last):
                buckets[w] = buckets.get(w, 0) + full
            tail = start_cycle + n_cycles - last * width
            buckets[last] = buckets.get(last, 0) + tail * per_cycle
        self._totals[key] += n_cycles * per_cycle

    def mark_high(self, unit: str, counter: str, value: int) -> None:
        key = (unit, counter)
        if key not in self._high or value > self._high[key]:
            self._high[key] = value

    def mark_low(self, unit: str, counter: str, value: int) -> None:
        key = (unit, counter)
        if key not in self._low or value < self._low[key]:
            self._low[key] = value

    # ------------------------------------------------------------------
    # simulator hooks (see the instrumentation sites in repro.sim)
    # ------------------------------------------------------------------
    def on_dispatch(self, cycle: int, icu, instruction) -> None:
        """Every dispatched instruction, including Repeat iterations."""
        state = self._dispatch_state.get(icu)
        if state is None:
            key = (f"icu:{icu}", "dispatches")
            state = self._dispatch_state[icu] = (key, self._bucket(key))
        key, buckets = state
        window = cycle // self.window_cycles
        buckets[window] = buckets.get(window, 0) + 1
        self._totals[key] += 1
        self.dispatch_log.append((cycle, icu, instruction))

    def on_icu_dispatch(
        self,
        icu_name: str,
        cycle: int,
        instruction,
        busy_until: int,
        buffer_bytes: int,
    ) -> None:
        """A queue consumed one dispatch slot (Repeat iterations excluded)."""
        state = self._icu_state.get(icu_name)
        if state is None:
            unit = f"icu:{icu_name}"
            dc_key = (unit, "dispatch_cycles")
            sc_key = (unit, "stall_cycles")
            state = self._icu_state[icu_name] = (
                dc_key,
                self._bucket(dc_key),
                sc_key,
                self._bucket(sc_key),
                (unit, "iq_low_water_bytes"),
            )
        dc_key, dc_buckets, sc_key, sc_buckets, low_key = state
        width = self.window_cycles
        window = cycle // width
        dc_buckets[window] = dc_buckets.get(window, 0) + 1
        totals = self._totals
        totals[dc_key] += 1
        if busy_until > cycle + 1:
            # NOP burn, Repeat pacing, multi-cycle occupancy: the queue is
            # stalled (cannot dispatch) from cycle+1 until busy_until —
            # same closed-form window split as count_span, inlined
            start = cycle + 1
            first = start // width
            last = (busy_until - 1) // width
            if first == last:
                sc_buckets[first] = (
                    sc_buckets.get(first, 0) + busy_until - start
                )
            else:
                head = (first + 1) * width - start
                sc_buckets[first] = sc_buckets.get(first, 0) + head
                for w in range(first + 1, last):
                    sc_buckets[w] = sc_buckets.get(w, 0) + width
                tail = busy_until - last * width
                sc_buckets[last] = sc_buckets.get(last, 0) + tail
            totals[sc_key] += busy_until - start
        low = self._low
        if low_key not in low or buffer_bytes < low[low_key]:
            low[low_key] = buffer_bytes

    def on_icu_parked(
        self, icu_name: str, park_cycle: int, release_cycle: int
    ) -> None:
        """A parked ``Sync`` released; bill the wait to its span."""
        self.count_span(
            f"icu:{icu_name}",
            "parked_cycles",
            park_cycle + 1,
            release_cycle - park_cycle - 1,
        )

    def on_iq_depth(self, icu_name: str, buffer_bytes: int) -> None:
        unit = f"icu:{icu_name}"
        self.mark_high(unit, "iq_high_water_bytes", buffer_bytes)
        self.mark_low(unit, "iq_low_water_bytes", buffer_bytes)

    def on_ifetch(
        self, icu_name: str, cycle: int, n_bytes: int, buffer_bytes: int
    ) -> None:
        unit = f"icu:{icu_name}"
        self.count(unit, "ifetch_bytes", cycle, n_bytes)
        self.mark_high(unit, "iq_high_water_bytes", buffer_bytes)

    def on_mem_traffic(
        self, slice_name: str, cycle: int, kind: str, n_bytes: int
    ) -> None:
        state = self._mem_state.get((slice_name, kind))
        if state is None:
            key = (f"mem:{slice_name}", f"{kind}_bytes")
            state = self._mem_state[(slice_name, kind)] = (
                key, self._bucket(key),
            )
        key, buckets = state
        window = cycle // self.window_cycles
        buckets[window] = buckets.get(window, 0) + n_bytes
        self._totals[key] += n_bytes

    def on_bank_conflict(self, slice_name: str, cycle: int) -> None:
        self.count(f"mem:{slice_name}", "bank_conflicts", cycle)

    def on_macc(
        self, unit_name: str, plane: int, cycle: int, n_ops: int
    ) -> None:
        self.count(f"mxm:{unit_name}.plane{plane}", "macc_ops", cycle, n_ops)

    def on_weights(
        self, unit_name: str, plane: int, cycle: int, n_bytes: int
    ) -> None:
        self.count(
            f"mxm:{unit_name}.plane{plane}", "weight_bytes", cycle, n_bytes
        )

    def on_alu(self, alu: int, cycle: int, n_ops: int) -> None:
        self.count(f"vxm:alu{alu}", "alu_ops", cycle, n_ops)

    def on_sxm(self, unit_name: str, cycle: int, n_bytes: int) -> None:
        self.count(f"sxm:{unit_name}", "bytes", cycle, n_bytes)

    def on_c2c(
        self, unit_name: str, link: int, cycle: int, kind: str, n_bytes: int
    ) -> None:
        self.count(f"c2c:{unit_name}.link{link}", f"{kind}_bytes", cycle, n_bytes)

    def on_link_event(
        self, unit_name: str, link: int, cycle: int, kind: str, n: int = 1
    ) -> None:
        """A link fault-protocol event: ``corrected`` / ``retry`` /
        ``uncorrectable`` / ``dropped`` (see repro.sim.c2c)."""
        self.count(f"c2c:{unit_name}.link{link}", f"{kind}_events", cycle, n)

    def on_run_end(self, final_cycle: int) -> None:
        self.cycles += final_cycle

    # ------------------------------------------------------------------
    def _init_srf(self) -> None:
        """Resolve and cache the four SRF counter buckets.

        All four are registered together on the first live shift, in both
        cores alike, so dense/fast snapshots stay identical.
        """
        self._srf_eh = self._bucket(_SRF_E_HOP)
        self._srf_wh = self._bucket(_SRF_W_HOP)
        self._srf_eo = self._bucket(_SRF_E_OCC)
        self._srf_wo = self._bucket(_SRF_W_OCC)

    def on_stream_shift(
        self,
        first_cycle: int,
        n: int,
        e_pos: np.ndarray,
        w_pos: np.ndarray,
        last: int,
        lanes: int,
        hops_e: int | None = None,
        hops_w: int | None = None,
        fell_e: int | None = None,
        fell_w: int | None = None,
    ) -> None:
        """Integrate SRF hop bytes and occupancy over an ``n``-cycle shift.

        ``e_pos``/``w_pos`` are the pre-shift positions of valid values.
        An eastward value at position ``p`` completes ``min(n, last - p)``
        hops (it is never billed for the cycle it falls off the edge, the
        same contract as ``StreamRegisterFile.hop_bytes_total``) and
        occupies a live register for ``min(n, last - p + 1)`` cycles;
        westward is the mirror image.  The per-cycle totals over the span
        are the non-increasing step functions of those per-value counts,
        integrated into windows by :meth:`_integrate` — bit-identical to
        what the dense core accumulates one cycle at a time.

        ``hops_*``/``fell_*`` are the per-direction completed-hop and
        fall-off totals ``StreamRegisterFile._shift`` computes anyway
        (recomputed here when absent).  Whenever the span lands in a
        single telemetry window — every dense cycle and most skips —
        those four integers settle the whole charge: the hop charge is
        ``hops * lanes`` and the occupancy total is ``hops + fell``,
        because a value occupies one cycle more than it hops exactly when
        it falls off inside the span.  Only window-crossing spans pay for
        the per-value integration.
        """
        live_e = e_pos.size
        live_w = w_pos.size
        if live_e == 0 and live_w == 0:
            return
        eh = self._srf_eh
        if eh is None:
            self._init_srf()
            eh = self._srf_eh
        totals = self._totals
        window = first_cycle // self.window_cycles
        if (first_cycle + n - 1) // self.window_cycles == window:
            if hops_e is None:
                k = min(n, last + 1)
                hops_e = int(np.minimum(last - e_pos, n).sum())
                hops_w = int(np.minimum(w_pos, n).sum())
                fell_e = int(np.count_nonzero(last - e_pos < k))
                fell_w = int(np.count_nonzero(w_pos < k))
            if live_e:
                occ = hops_e + fell_e
                eo = self._srf_eo
                eo[window] = eo.get(window, 0) + occ
                totals[_SRF_E_OCC] += occ
                if hops_e:
                    amount = hops_e * lanes
                    eh[window] = eh.get(window, 0) + amount
                    totals[_SRF_E_HOP] += amount
            if live_w:
                occ = hops_w + fell_w
                wo = self._srf_wo
                wo[window] = wo.get(window, 0) + occ
                totals[_SRF_W_OCC] += occ
                if hops_w:
                    wh = self._srf_wh
                    amount = hops_w * lanes
                    wh[window] = wh.get(window, 0) + amount
                    totals[_SRF_W_HOP] += amount
            return
        # span crosses a window boundary: exact per-value integration.
        # below ~a hundred live values plain Python beats numpy dispatch
        # overhead by a wide margin — and sparse occupancy is exactly the
        # regime the fast-forward core (and hence this hook) lives in
        if live_e + live_w <= 128:
            if live_e:
                e_list = e_pos.tolist()
                self._integrate(
                    _SRF_E_HOP, eh, first_cycle,
                    [min(n, last - p) for p in e_list], lanes,
                )
                self._integrate(
                    _SRF_E_OCC, self._srf_eo, first_cycle,
                    [min(n, last - p + 1) for p in e_list], 1,
                )
            if live_w:
                w_list = w_pos.tolist()
                self._integrate(
                    _SRF_W_HOP, self._srf_wh, first_cycle,
                    [min(n, p) for p in w_list], lanes,
                )
                self._integrate(
                    _SRF_W_OCC, self._srf_wo, first_cycle,
                    [min(n, p + 1) for p in w_list], 1,
                )
            return
        self._integrate(
            _SRF_E_HOP, eh, first_cycle, np.minimum(last - e_pos, n), lanes
        )
        self._integrate(
            _SRF_W_HOP, self._srf_wh, first_cycle, np.minimum(w_pos, n),
            lanes,
        )
        self._integrate(
            _SRF_E_OCC, self._srf_eo, first_cycle,
            np.minimum(last - e_pos + 1, n), 1,
        )
        self._integrate(
            _SRF_W_OCC, self._srf_wo, first_cycle, np.minimum(w_pos + 1, n),
            1,
        )

    def _integrate(
        self,
        key: tuple[str, str],
        buckets: dict[int, int],
        start_cycle: int,
        durations,
        scale: int,
    ) -> None:
        """Charge ``#{d > k} * scale`` at ``start_cycle + k`` for each k.

        ``durations`` (a list or ndarray) holds one entry per in-flight
        value: how many of the span's cycles that value contributes.  The
        per-cycle total is a non-increasing step function with at most
        ``len(unique(d))`` segments, each charged in closed form over the
        windows it crosses (same head/full/tail split as
        :meth:`count_span`, against the pre-resolved ``buckets``).
        """
        remaining = len(durations)
        if remaining == 0:
            return
        width = self.window_cycles
        if remaining == 1:
            # the overwhelmingly common fast-forward case: one live value
            d = int(durations[0])
            if d <= 0:
                return
            first = start_cycle // width
            last = (start_cycle + d - 1) // width
            if first == last:
                buckets[first] = buckets.get(first, 0) + d * scale
            else:
                head = (first + 1) * width - start_cycle
                buckets[first] = buckets.get(first, 0) + head * scale
                full = width * scale
                for w in range(first + 1, last):
                    buckets[w] = buckets.get(w, 0) + full
                tail = start_cycle + d - last * width
                buckets[last] = buckets.get(last, 0) + tail * scale
            self._totals[key] += d * scale
            return
        if isinstance(durations, list):
            tally = sorted(Counter(durations).items())
        else:
            values, counts = np.unique(durations, return_counts=True)
            tally = zip(values.tolist(), counts.tolist())
        totals = self._totals
        prev = 0
        for d, c in tally:
            d = int(d)
            if d > prev and remaining > 0:
                per_cycle = remaining * scale
                n_cycles = d - prev
                start = start_cycle + prev
                first = start // width
                last = (start + n_cycles - 1) // width
                if first == last:
                    buckets[first] = (
                        buckets.get(first, 0) + n_cycles * per_cycle
                    )
                else:
                    head = (first + 1) * width - start
                    buckets[first] = buckets.get(first, 0) + head * per_cycle
                    full = width * per_cycle
                    for w in range(first + 1, last):
                        buckets[w] = buckets.get(w, 0) + full
                    tail = start + n_cycles - last * width
                    buckets[last] = buckets.get(last, 0) + tail * per_cycle
                totals[key] += n_cycles * per_cycle
            remaining -= int(c)
            prev = d

    # ------------------------------------------------------------------
    # state transfer (schedule replay)
    # ------------------------------------------------------------------
    @property
    def is_fresh(self) -> bool:
        """True while no counter, scalar, or dispatch has been observed."""
        return (
            not self._windows
            and not self._high
            and not self._low
            and self.cycles == 0
            and not self.dispatch_log
        )

    def export_state(self) -> dict:
        """Detached copy of the full counter state, for replay plans.

        The export of a collector that observed exactly one run is the
        run's telemetry delta; :meth:`merge_state` folds it into another
        collector of the same window width as if that collector had
        observed the run itself.
        """
        return {
            "windows": {
                key: dict(buckets)
                for key, buckets in self._windows.items()
            },
            "high": dict(self._high),
            "low": dict(self._low),
            "cycles": self.cycles,
            "dispatch_log": list(self.dispatch_log),
        }

    def merge_state(self, state: dict) -> None:
        """Fold an :meth:`export_state` image into this collector.

        Additive counters merge window-by-window through :meth:`_bucket`
        so the hot-path caches keep pointing at the live dicts; high/low
        marks merge by extremum (they are absolute, not deltas).
        """
        totals = self._totals
        for key, windows in state["windows"].items():
            buckets = self._bucket(key)
            added = 0
            for w, v in windows.items():
                buckets[w] = buckets.get(w, 0) + v
                added += v
            totals[key] += added
        for key, value in state["high"].items():
            if key not in self._high or value > self._high[key]:
                self._high[key] = value
        for key, value in state["low"].items():
            if key not in self._low or value < self._low[key]:
                self._low[key] = value
        self.cycles += state["cycles"]
        self.dispatch_log.extend(state["dispatch_log"])

    # ------------------------------------------------------------------
    # read-out
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical, JSON-able image of every counter and scalar.

        The lockstep comparator asserts snapshot equality between the
        dense and fast-forward cores; dict comparison is order-blind, so
        any hook ordering that differs only *within* a cycle is fine.
        """
        counters: dict[str, dict[str, dict[str, int]]] = {}
        for (unit, name), buckets in self._windows.items():
            counters.setdefault(unit, {})[name] = {
                str(w): buckets[w] for w in sorted(buckets)
            }
        scalars: dict[str, dict[str, int]] = {}
        for (unit, name), value in self._high.items():
            scalars.setdefault(unit, {})[name] = value
        for (unit, name), value in self._low.items():
            scalars.setdefault(unit, {})[name] = value
        return {
            "window_cycles": self.window_cycles,
            "cycles": self.cycles,
            "counters": counters,
            "scalars": scalars,
        }

    def totals(self) -> dict[str, dict[str, int]]:
        """Whole-run totals per unit (sum of every window)."""
        out: dict[str, dict[str, int]] = {}
        for (unit, name), total in self._totals.items():
            out.setdefault(unit, {})[name] = total
        return out

    def windows_for(self, unit: str, counter: str) -> dict[int, int]:
        """The window series of one counter (empty dict if never touched)."""
        return dict(self._windows.get((unit, counter), {}))

    def domain_windows(self, domain: str, counter: str) -> dict[int, int]:
        """Window series summed over every unit of one domain prefix."""
        merged: dict[int, int] = {}
        prefix = domain + ":"
        for (unit, name), buckets in self._windows.items():
            if name == counter and unit.startswith(prefix):
                for w, v in buckets.items():
                    merged[w] = merged.get(w, 0) + v
        return merged

    def rollup(self) -> ActivityCounts:
        """The coarse :class:`ActivityCounts` view of the fine registry.

        Exactly equals the chip's own ``RunResult.activity`` window for
        the run(s) this collector observed — asserted by the telemetry
        test suite — making the flat power-model tally a derived view of
        the counter hierarchy rather than an independent set of books.
        """
        return ActivityCounts.from_fine(self.totals(), cycles=self.cycles)


class AutoTelemetry:
    """Attach a fresh collector to every chip constructed while active.

    Used by ``python -m repro.obs <script.py>`` to profile an unmodified
    script: set :attr:`repro.sim.chip.TspChip.auto_telemetry` to an
    instance, run the script, and read ``collectors``.
    """

    def __init__(self, window_cycles: int = 256) -> None:
        self.window_cycles = window_cycles
        self.collectors: list[TelemetryCollector] = []

    def register(self, chip) -> TelemetryCollector:
        collector = TelemetryCollector(
            window_cycles=self.window_cycles,
            name=f"chip{len(self.collectors)}",
        )
        chip.attach_telemetry(collector)
        self.collectors.append(collector)
        return collector

    def install(self) -> "AutoTelemetry":
        from ..sim.chip import TspChip

        TspChip.auto_telemetry = self
        return self

    def uninstall(self) -> None:
        from ..sim.chip import TspChip

        if TspChip.auto_telemetry is self:
            TspChip.auto_telemetry = None

    def __enter__(self) -> "AutoTelemetry":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()
