"""Dataflow-aware Perfetto/Chrome trace building.

Converts one or more observed runs into the Chrome trace-event JSON that
``chrome://tracing`` / https://ui.perfetto.dev render:

* one *process* (pid) per chip, one *thread* (tid) per instruction queue;
* ``"X"`` duration spans per dispatched instruction with **true
  durations** derived from the timing model (``d_func``/``d_skew``, NOP
  counts, Repeat cadences, MXM install/stream lengths) rather than a
  fixed one-cycle slice;
* ``"C"`` counter tracks sampled from the telemetry windows (SRAM
  traffic, MACCs, ALU ops, SRF occupancy);
* ``"s"``/``"f"`` flow arrows from each producing drive to the consumers
  that sample the value downstream — computable exactly because a stream
  value's trajectory is ``position ± (t - t0)``: eastward producer/
  consumer pairs share the invariant ``t - p``, westward ``t + p``;
* optional ``schedule.intent`` rows replaying the compiler's
  :class:`~repro.compiler.scheduler.PredictedDrive` promises next to what
  actually ran.

Timestamps are microseconds of simulated time (the unit the Chrome trace
format expects); one cycle at ``clock_ghz`` GHz is ``1e-3 / clock_ghz``
microseconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..arch.geometry import Direction
from ..errors import IsaError
from ..isa.c2c import Receive, Send
from ..isa.icu import Ifetch, Nop, Repeat
from ..isa.mem import Gather, Read, Scatter, Write
from ..isa.mxm import (
    Accumulate,
    ActivationBufferControl,
    InstallWeights,
    LoadWeights,
)
from ..isa.sxm import Distribute, Permute, Rotate, Select, Shift, Transpose
from ..isa.vxm import BinaryOp, Convert, UnaryOp

#: domain-level counter tracks emitted when a collector is given
_COUNTER_TRACKS = (
    ("mem", "read_bytes", "MEM read bytes"),
    ("mem", "write_bytes", "MEM write bytes"),
    ("mxm", "macc_ops", "MXM MACCs"),
    ("vxm", "alu_ops", "VXM ALU ops"),
    ("sxm", "bytes", "SXM bytes"),
    ("srf", "occupancy_cycles", "SRF live values"),
    ("srf", "hop_bytes", "SRF hop bytes"),
)


def instruction_duration(instruction, timing, config) -> int:
    """True occupancy of one instruction, in cycles.

    The span a profiler should draw: from dispatch until the instruction's
    last architecturally-timed effect (result drive, final operand sample,
    NOP expiry).  Always >= 1.
    """
    if isinstance(instruction, Nop):
        return max(1, instruction.count)
    if isinstance(instruction, Repeat):
        return max(1, (instruction.n - 1) * instruction.d + 1)
    if isinstance(instruction, InstallWeights):
        skew = instruction.dskew(timing)
        if instruction.from_buffer:
            return max(1, skew + 1)
        return max(1, skew + instruction.install_cycles(config.n_lanes))
    if isinstance(instruction, ActivationBufferControl):
        return max(1, instruction.dskew(timing) + instruction.n_vectors)
    if isinstance(instruction, Accumulate):
        return max(1, instruction.dfunc(timing) + instruction.n_vectors)
    try:
        return max(
            1, instruction.dfunc(timing), instruction.dskew(timing) + 1
        )
    except IsaError:
        return 1


def mnemonic_duration(mnemonic: str, timing) -> int:
    """Duration when only the mnemonic survives (plain ``TraceEvent``)."""
    try:
        return max(1, timing.functional_delay(mnemonic))
    except IsaError:
        return 1


# ----------------------------------------------------------------------
# stream endpoints, for flow arrows
# ----------------------------------------------------------------------
def instruction_endpoints(instruction, cycle, position, timing, config):
    """(drives, captures) of one dispatch, as (direction, stream, pos, t).

    Best-effort: instruction classes with no stream traffic (or unknown
    extensions) return empty lists, which simply means no flow arrows.
    """
    drives: list[tuple] = []
    captures: list[tuple] = []

    def dfunc():
        return instruction.dfunc(timing)

    def dskew():
        return instruction.dskew(timing)

    if isinstance(instruction, Read):
        drives.append(
            (instruction.direction, instruction.stream, position,
             cycle + dfunc())
        )
    elif isinstance(instruction, Write):
        captures.append(
            (instruction.direction, instruction.stream, position,
             cycle + dskew())
        )
    elif isinstance(instruction, Gather):
        captures.append(
            (instruction.map_direction, instruction.map_stream, position,
             cycle + dskew())
        )
        drives.append(
            (instruction.direction, instruction.stream, position,
             cycle + dfunc())
        )
    elif isinstance(instruction, Scatter):
        t = cycle + dskew()
        captures.append(
            (instruction.direction, instruction.map_stream, position, t)
        )
        captures.append(
            (instruction.direction, instruction.stream, position, t)
        )
    elif isinstance(instruction, UnaryOp):
        t = cycle + dskew()
        for k in range(instruction.dtype.n_streams):
            captures.append(
                (instruction.src_direction, instruction.src_stream + k,
                 position, t)
            )
        out = cycle + dfunc()
        for k in range(instruction.dtype.n_streams):
            drives.append(
                (instruction.dst_direction, instruction.dst_stream + k,
                 position, out)
            )
    elif isinstance(instruction, BinaryOp):
        t = cycle + dskew()
        for k in range(instruction.dtype.n_streams):
            captures.append(
                (instruction.src1_direction, instruction.src1_stream + k,
                 position, t)
            )
            captures.append(
                (instruction.src2_direction, instruction.src2_stream + k,
                 position, t)
            )
        out = cycle + dfunc()
        for k in range(instruction.dtype.n_streams):
            drives.append(
                (instruction.dst_direction, instruction.dst_stream + k,
                 position, out)
            )
    elif isinstance(instruction, Convert):
        t = cycle + dskew()
        for k in range(instruction.from_dtype.n_streams):
            captures.append(
                (instruction.src_direction, instruction.src_stream + k,
                 position, t)
            )
        out = cycle + dfunc()
        for k in range(instruction.to_dtype.n_streams):
            drives.append(
                (instruction.dst_direction, instruction.dst_stream + k,
                 position, out)
            )
    elif isinstance(instruction, (Shift, Permute, Distribute)):
        captures.append(
            (instruction.direction, instruction.src_stream, position,
             cycle + dskew())
        )
        drives.append(
            (instruction.dst_direction, instruction.dst_stream, position,
             cycle + dfunc())
        )
    elif isinstance(instruction, Select):
        t = cycle + dskew()
        captures.append(
            (instruction.direction, instruction.src_stream_a, position, t)
        )
        captures.append(
            (instruction.direction, instruction.src_stream_b, position, t)
        )
        drives.append(
            (instruction.dst_direction, instruction.dst_stream, position,
             cycle + dfunc())
        )
    elif isinstance(instruction, Rotate):
        captures.append(
            (instruction.direction, instruction.src_stream, position,
             cycle + dskew())
        )
        out = cycle + dfunc()
        for r in range(instruction.n * instruction.n):
            drives.append(
                (instruction.dst_direction,
                 instruction.dst_base_stream + r, position, out)
            )
    elif isinstance(instruction, Transpose):
        t = cycle + dskew()
        out = cycle + dfunc()
        per = config.lanes_per_superlane
        for s in range(per):
            captures.append(
                (instruction.direction, instruction.src_base_stream + s,
                 position, t)
            )
            drives.append(
                (instruction.dst_direction, instruction.dst_base_stream + s,
                 position, out)
            )
    elif isinstance(instruction, LoadWeights):
        captures.append(
            (instruction.direction, instruction.stream, position,
             cycle + dskew())
        )
    elif isinstance(instruction, InstallWeights):
        if not instruction.from_buffer:
            skew = dskew()
            for c in range(instruction.install_cycles(config.n_lanes)):
                for s in range(instruction.n_streams):
                    captures.append(
                        (instruction.direction,
                         instruction.base_stream + s, position,
                         cycle + skew + c)
                    )
    elif isinstance(instruction, ActivationBufferControl):
        skew = dskew()
        for k in range(instruction.n_vectors):
            for s in range(instruction.dtype.n_streams):
                captures.append(
                    (instruction.direction, instruction.base_stream + s,
                     position, cycle + skew + k)
                )
    elif isinstance(instruction, Accumulate):
        if instruction.emit:
            base = cycle + dfunc()
            for k in range(instruction.n_vectors):
                for s in range(instruction.out_dtype.n_streams):
                    drives.append(
                        (instruction.direction,
                         instruction.base_stream + s, position, base + k)
                    )
    elif isinstance(instruction, Send):
        captures.append(
            (instruction.direction, instruction.stream, position,
             cycle + dskew())
        )
    elif isinstance(instruction, Receive):
        pass
    return drives, captures


def _flow_key(direction: Direction, stream: int, position: int, t: int):
    """Trajectory invariant: equal keys = same moving stream value."""
    if direction is Direction.EASTWARD:
        return (direction.value, stream, t - position)
    return (direction.value, stream, t + position)


# ----------------------------------------------------------------------
@dataclass
class HostSpan:
    """One wall-clock span of host-side work (batching, compile, execute).

    Unlike chip spans, whose timestamps derive from simulated cycles,
    host spans are stamped in real microseconds by the serving layer —
    the two clock domains render as separate processes in the same trace,
    which is exactly how a datacenter profile shows host queueing next to
    accelerator occupancy.
    """

    track: str  # row within the host process, e.g. "worker0"
    name: str
    start_us: float
    dur_us: float
    args: dict = field(default_factory=dict)


class PerfettoTraceBuilder:
    """Accumulate one or more chips' runs into one trace-event list."""

    def __init__(self, clock_ghz: float = 1.0) -> None:
        self.clock_ghz = clock_ghz
        self.events: list[dict] = []
        self._next_flow_id = 1

    def _us(self, cycle: int) -> float:
        return round(cycle * 1e-3 / self.clock_ghz, 9)

    # ------------------------------------------------------------------
    def add_chip(
        self,
        name: str = "tsp",
        pid: int = 0,
        trace=None,
        collector=None,
        timing=None,
        intent=None,
    ) -> None:
        """Add one chip's run.

        ``collector`` (a bound :class:`TelemetryCollector`) is the richest
        source: its dispatch log carries instruction objects, enabling
        exact durations and flow arrows, and its windows become counter
        tracks.  ``trace`` (a ``TraceEvent`` list) is the fallback with
        mnemonic-derived durations.  ``intent`` adds the compile-time
        schedule promises as their own row.
        """
        if collector is not None:
            timing = timing or collector.timing
        self.events.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": name},
        })
        self.events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid,
            "args": {"sort_index": pid},
        })
        if collector is not None and collector.dispatch_log:
            self._add_spans_from_log(pid, collector, timing)
        elif trace:
            self._add_spans_from_trace(pid, trace, timing)
        if collector is not None:
            self._add_counter_tracks(pid, collector)
        if intent is not None:
            self._add_intent(pid, intent)

    # ------------------------------------------------------------------
    def _thread_metadata(self, pid: int, icu_names: list[str]) -> dict:
        tids = {icu: i for i, icu in enumerate(sorted(icu_names))}
        for icu, tid in tids.items():
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": icu},
            })
        return tids

    def _add_spans_from_log(self, pid, collector, timing) -> None:
        log = collector.dispatch_log
        config = collector.config
        floorplan = collector.floorplan
        tids = self._thread_metadata(
            pid, list({str(icu) for _, icu, _ in log})
        )
        # index every capture endpoint by its trajectory invariant so each
        # drive finds its downstream consumers in O(1)
        captures_by_key: dict[tuple, list[tuple]] = {}
        entries = []
        for cycle, icu, instruction in log:
            name = str(icu)
            position = floorplan.position(icu.address)
            drives, captures = instruction_endpoints(
                instruction, cycle, position, timing, config
            )
            entries.append((cycle, name, instruction, drives))
            for direction, stream, pos, t in captures:
                key = _flow_key(direction, stream, pos, t)
                captures_by_key.setdefault(key, []).append(
                    (t, pos, direction, tids[name])
                )
        for cycle, name, instruction, drives in entries:
            tid = tids[name]
            if instruction.mnemonic != "NOP":
                self.events.append({
                    "name": instruction.mnemonic, "cat": "dispatch",
                    "ph": "X", "ts": self._us(cycle),
                    "dur": self._us(
                        instruction_duration(instruction, timing, config)
                    ),
                    "pid": pid, "tid": tid,
                    "args": {"text": str(instruction), "cycle": cycle},
                })
            for direction, stream, pos, t0 in drives:
                key = _flow_key(direction, stream, pos, t0)
                for t1, p1, _d, consumer_tid in captures_by_key.get(key, ()):
                    downstream = (
                        p1 >= pos if direction is Direction.EASTWARD
                        else p1 <= pos
                    )
                    if not downstream or t1 < t0:
                        continue
                    flow_id = self._next_flow_id
                    self._next_flow_id += 1
                    common = {
                        "cat": "dataflow",
                        "name": f"stream {stream}{direction.value}",
                        "id": flow_id, "pid": pid,
                    }
                    self.events.append({
                        **common, "ph": "s", "ts": self._us(t0), "tid": tid,
                    })
                    self.events.append({
                        **common, "ph": "f", "bp": "e",
                        "ts": self._us(t1), "tid": consumer_tid,
                    })

    def _add_spans_from_trace(self, pid, trace, timing) -> None:
        tids = self._thread_metadata(pid, list({e.icu for e in trace}))
        for event in trace:
            if event.mnemonic == "NOP":
                continue
            dur = (
                mnemonic_duration(event.mnemonic, timing)
                if timing is not None else 1
            )
            self.events.append({
                "name": event.mnemonic, "cat": "dispatch", "ph": "X",
                "ts": self._us(event.cycle), "dur": self._us(dur),
                "pid": pid, "tid": tids[event.icu],
                "args": {"text": event.text, "cycle": event.cycle},
            })

    def _add_counter_tracks(self, pid, collector) -> None:
        width = collector.window_cycles
        for domain, counter, label in _COUNTER_TRACKS:
            if domain == "srf":
                series: dict[int, int] = {}
                for direction in ("E", "W"):
                    for w, v in collector.windows_for(
                        f"srf:{direction}", counter
                    ).items():
                        series[w] = series.get(w, 0) + v
            else:
                series = collector.domain_windows(domain, counter)
            if not series:
                continue
            last_window = max(series)
            for w in range(last_window + 2):
                self.events.append({
                    "name": label, "cat": "telemetry", "ph": "C",
                    "ts": self._us(w * width), "pid": pid,
                    "args": {counter: series.get(w, 0)},
                })

    def _add_intent(self, pid, intent) -> None:
        tid = 10_000  # well past any ICU tid
        self.events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": "schedule.intent"},
        })
        for drive in intent.drives:
            dur = 1 if drive.parallel else max(1, drive.n_vectors)
            self.events.append({
                "name": drive.name, "cat": "intent", "ph": "X",
                "ts": self._us(drive.t0), "dur": self._us(dur),
                "pid": pid, "tid": tid,
                "args": {
                    "direction": drive.direction.value,
                    "base_stream": drive.base_stream,
                    "width": drive.width,
                    "position": drive.position,
                    "n_vectors": drive.n_vectors,
                },
            })

    # ------------------------------------------------------------------
    def add_host_spans(
        self, spans: list[HostSpan], name: str = "serve", pid: int = 100
    ) -> None:
        """Add host-side wall-clock spans as their own process.

        Each distinct ``span.track`` becomes one thread row (the batcher,
        each pool worker); timestamps are the spans' real microseconds,
        not simulated cycles, so pick a ``pid`` clear of the chip pids.
        """
        self.events.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": name},
        })
        self.events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid,
            "args": {"sort_index": pid},
        })
        tids = {t: i for i, t in enumerate(sorted({s.track for s in spans}))}
        for track, tid in tids.items():
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        for span in spans:
            self.events.append({
                "name": span.name, "cat": "serve", "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(max(span.dur_us, 0.001), 3),
                "pid": pid, "tid": tids[span.track],
                "args": dict(span.args),
            })

    # ------------------------------------------------------------------
    def add_request_trace(
        self,
        tracer,
        name: str = "serve",
        pid: int = 100,
        chip_pid_base: int = 200,
        timing=None,
    ) -> None:
        """Render a :class:`~repro.obs.rtrace.RequestTracer` as ONE
        unified trace: host phases and on-chip events share a timeline.

        * The host process (``pid``) gets one thread row per span track
          (the request row, the batcher-form row, each pool worker), with
          every recorded phase as an ``"X"`` duration span.
        * Each request additionally becomes an async ``"b"``/``"e"`` pair
          (``id`` = request id), so Perfetto's "Async" rows show one bar
          per request spanning its whole life.
        * Spans that carry a clock anchor (a chip run: ``chip``,
          ``cycles``, ``clock_ghz``) and retained chip events get one
          process per chip (``chip_pid_base + i``); every cycle-stamped
          instruction event is placed at
          ``span.start_us + cycle * 1e-3 / clock_ghz`` — the anchor math
          that folds the deterministic cycle domain into the host µs
          domain — and a flow arrow connects the owning host span to the
          first on-chip event.
        """
        spans = tracer.spans()
        self.events.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": name},
        })
        self.events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid,
            "args": {"sort_index": pid},
        })
        tids = {
            track: i
            for i, track in enumerate(sorted({s.track for s in spans}))
        }
        for track, tid in tids.items():
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        chip_pids: dict[str, int] = {}
        chip_icus: dict[str, dict[str, int]] = {}
        for chip in sorted(
            {s.chip for s in spans if s.chip and s.chip_events}
        ):
            chip_pid = chip_pid_base + len(chip_pids)
            chip_pids[chip] = chip_pid
            chip_icus[chip] = {}
            self.events.append({
                "name": "process_name", "ph": "M", "pid": chip_pid,
                "args": {"name": chip},
            })
            self.events.append({
                "name": "process_sort_index", "ph": "M", "pid": chip_pid,
                "args": {"sort_index": chip_pid},
            })
        for span in spans:
            args = {
                "span": span.id,
                **({"parent": span.parent_id}
                   if span.parent_id is not None else {}),
                **({"request": span.request_id}
                   if span.request_id is not None else {}),
                **({"batch": span.batch_id}
                   if span.batch_id is not None else {}),
                **({"model": span.model} if span.model else {}),
                **({"chip": span.chip} if span.chip else {}),
                **({"cycles": span.cycles}
                   if span.cycles is not None else {}),
                **span.args,
            }
            tid = tids[span.track]
            self.events.append({
                "name": span.name, "cat": "rtrace", "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(max(span.dur_us, 0.001), 3),
                "pid": pid, "tid": tid,
                "args": args,
            })
            if span.name == "request" and span.request_id is not None:
                common = {
                    "cat": "request",
                    "name": f"request {span.request_id}",
                    "id": span.request_id, "pid": pid, "tid": tid,
                }
                self.events.append({
                    **common, "ph": "b", "ts": round(span.start_us, 3),
                    "args": args,
                })
                self.events.append({
                    **common, "ph": "e", "ts": round(span.end_us, 3),
                })
            if span.chip and span.chip_events and span.clock_ghz:
                self._add_anchored_chip_events(
                    span, chip_pids[span.chip], chip_icus[span.chip],
                    pid, tid, timing,
                )

    def _add_anchored_chip_events(
        self, span, chip_pid, icu_tids, host_pid, host_tid, timing
    ) -> None:
        """Place one anchored run's cycle-stamped events on the host
        timeline and draw the host-span -> chip flow arrow."""
        cycle_us = 1e-3 / span.clock_ghz
        first_ts = None
        for event in span.chip_events:
            if event.mnemonic == "NOP":
                continue
            tid = icu_tids.get(event.icu)
            if tid is None:
                tid = icu_tids[event.icu] = len(icu_tids)
                self.events.append({
                    "name": "thread_name", "ph": "M", "pid": chip_pid,
                    "tid": tid, "args": {"name": event.icu},
                })
            ts = round(span.start_us + event.cycle * cycle_us, 6)
            if first_ts is None or ts < first_ts:
                first_ts = ts
            dur = (
                mnemonic_duration(event.mnemonic, timing)
                if timing is not None else 1
            )
            self.events.append({
                "name": event.mnemonic, "cat": "dispatch", "ph": "X",
                "ts": ts, "dur": round(dur * cycle_us, 6),
                "pid": chip_pid, "tid": tid,
                "args": {
                    "text": event.text, "cycle": event.cycle,
                    "span": span.id,
                },
            })
        if first_ts is not None:
            flow_id = self._next_flow_id
            self._next_flow_id += 1
            common = {
                "cat": "rtrace", "name": f"{span.name} anchor",
                "id": flow_id,
            }
            self.events.append({
                **common, "ph": "s", "ts": round(span.start_us, 3),
                "pid": host_pid, "tid": host_tid,
            })
            self.events.append({
                **common, "ph": "f", "bp": "e", "ts": first_ts,
                "pid": chip_pid, "tid": icu_tids[
                    next(iter(icu_tids))
                ],
            })

    # ------------------------------------------------------------------
    def add_system(self, system, collectors=None, intents=None) -> None:
        """One process per chip of a :class:`MultiChipSystem`."""
        for i, chip in enumerate(system.chips):
            collector = None
            if collectors is not None:
                collector = collectors[i]
            elif chip.obs is not None:
                collector = chip.obs
            self.add_chip(
                name=f"chip{i}",
                pid=i,
                trace=chip.trace,
                collector=collector,
                timing=chip.timing,
                intent=intents[i] if intents else None,
            )

    def build(self) -> list[dict]:
        return list(self.events)


def write_trace(events: list[dict], path: str) -> None:
    """Write trace events as a Chrome/Perfetto-loadable JSON array."""
    with open(path, "w") as handle:
        json.dump(events, handle, indent=1, sort_keys=True)
        handle.write("\n")
