"""Request-scoped distributed tracing across the serving stack.

The TSP's determinism gives every *on-chip* event an exact cycle
timestamp; this module extends that visibility to the *host* side of the
serving path, so one request's journey — batcher queue, program cache,
chip pool, chunk execution, C2C ring hops — is one connected tree of
spans instead of per-subsystem counters.

Three pieces:

* :class:`TraceContext` — the propagation token.  The pool worker opens a
  batch-scoped context before running a batch and installs it as the
  *ambient* context (a :class:`contextvars.ContextVar`, naturally
  thread-local across pool workers); deep layers that already exist —
  :meth:`repro.serve.cache.ProgramCache.get_or_compile`, the chunk
  executor in :mod:`repro.nn.tsp_inference`, the ring transfers in
  :func:`repro.nn.scaleout.execute_pipeline` — ask :func:`current` for it
  and record child spans without any signature change.  When no tracer is
  installed the cost is one ``ContextVar.get`` returning ``None``.
* :class:`Span` — one phase of one request or batch: ``queue_wait``,
  ``batch_form``, ``checkout``, ``cache``, ``compile``, ``execute``,
  ``stage``, ``transfer``, ``respond``, plus the per-request ``request``
  root.  Spans that ran on a chip also carry the **clock anchor**: the
  host-monotonic microsecond at which the chip run's cycle 0 happened,
  the run's cycle count, and the clock rate — enough to place every
  cycle-stamped chip event on the host timeline
  (``host_us(c) = start_us + c * 1e-3 / clock_ghz``).
* :class:`RequestTracer` — the bounded collection point: a drop-oldest
  ring buffer of at most ``max_spans`` spans plus a dropped-span counter,
  so tracing memory is O(max_spans) no matter how many requests flow
  through (the same discipline the serving metrics follow).

The cycle-domain content of a trace (span cycle counts, chip event
cycles) is a pure function of the executed programs, so it is
bit-identical between the dense and fast-forward cores —
:func:`RequestTracer.cycle_signature` projects exactly that content and
:func:`repro.verify.lockstep.assert_trace_lockstep` gates on it.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field

#: host-side phases a request passes through, in causal order; the
#: final four only appear on self-healing paths (a failed batch's
#: requeue, a worker's health transitions, quarantined hardware
#: returning to service)
PHASES = (
    "queue_wait",
    "batch_form",
    "checkout",
    "cache",
    "compile",
    "execute",
    "stage",
    "transfer",
    "respond",
    "retry",
    "quarantine",
    "recompile_degraded",
    "repair",
)

_CURRENT: ContextVar = ContextVar("repro_rtrace_current", default=None)


def current() -> "TraceContext | None":
    """The ambient trace context of this thread, or None (tracing off)."""
    return _CURRENT.get()


def push(ctx: "TraceContext"):
    """Install ``ctx`` as the ambient context; returns the reset token."""
    return _CURRENT.set(ctx)


def pop(token) -> None:
    _CURRENT.reset(token)


@dataclass(frozen=True)
class TraceContext:
    """The propagation token: which tracer, and which parent span.

    One context is opened per batch by the pool worker (``span_id`` is the
    batch span) and rides the ambient :class:`~contextvars.ContextVar`
    through every layer the batch touches.
    """

    tracer: "RequestTracer"
    span_id: int
    batch_id: int | None = None
    model: str | None = None
    worker: str | None = None

    def child(self, span_id: int) -> "TraceContext":
        """A context parented to ``span_id`` (nested phase spans)."""
        return TraceContext(
            tracer=self.tracer,
            span_id=span_id,
            batch_id=self.batch_id,
            model=self.model,
            worker=self.worker,
        )


@dataclass
class Span:
    """One recorded phase of one request's or batch's life.

    ``start_us``/``dur_us`` are host-monotonic microseconds since the
    tracer's origin.  Spans that executed a chip run additionally carry
    the chip-domain anchor (``chip``, ``cycles``, ``clock_ghz``) and —
    when the tracer retains them — the run's dispatched instruction
    events, each stamped in cycles relative to the anchor.
    """

    id: int
    name: str
    track: str
    start_us: float
    dur_us: float
    parent_id: int | None = None
    request_id: int | None = None
    batch_id: int | None = None
    model: str | None = None
    #: clock anchor: which chip ran, for how many cycles, at what rate
    chip: str | None = None
    cycles: int | None = None
    clock_ghz: float | None = None
    #: per-run dispatch events (sim TraceEvent: cycle/icu/mnemonic/text)
    chip_events: tuple = ()
    args: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us


class RequestTracer:
    """Bounded-memory span collector for one serving session.

    Thread-safe: pool workers, the server's observer callback, and any
    layer holding the ambient context record concurrently.  The buffer
    drops the *oldest* span when full and counts the drop, so a
    long-running server keeps the most recent window of activity and the
    metrics exporter can report exactly how much history was shed.
    """

    def __init__(
        self,
        max_spans: int = 4096,
        origin_s: float | None = None,
        chip_events: bool = False,
        clock=time.monotonic,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        #: retain per-run chip dispatch events on anchored spans (needs
        #: the pool's chips constructed with ``trace=True``)
        self.chip_events = chip_events
        self._clock = clock
        self._origin_s = clock() if origin_s is None else origin_s
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._ids = itertools.count(1)
        #: spans evicted from the ring buffer (drop-oldest)
        self.dropped = 0

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    def now_us(self) -> float:
        """Host-monotonic microseconds since the tracer's origin."""
        return (self._clock() - self._origin_s) * 1e6

    def us_of(self, monotonic_s: float) -> float:
        """Convert an absolute ``time.monotonic`` stamp to tracer µs."""
        return (monotonic_s - self._origin_s) * 1e6

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def next_id(self) -> int:
        return next(self._ids)

    def record(
        self,
        name: str,
        track: str,
        start_us: float,
        end_us: float,
        *,
        span_id: int | None = None,
        parent_id: int | None = None,
        request_id: int | None = None,
        batch_id: int | None = None,
        model: str | None = None,
        chip: str | None = None,
        cycles: int | None = None,
        clock_ghz: float | None = None,
        chip_events: tuple = (),
        args: dict | None = None,
    ) -> Span:
        """Record one completed span (spans are stamped at both ends)."""
        span = Span(
            id=self.next_id() if span_id is None else span_id,
            name=name,
            track=track,
            start_us=start_us,
            dur_us=max(end_us - start_us, 0.0),
            parent_id=parent_id,
            request_id=request_id,
            batch_id=batch_id,
            model=model,
            chip=chip,
            cycles=cycles,
            clock_ghz=clock_ghz,
            chip_events=tuple(chip_events),
            args=dict(args or {}),
        )
        with self._lock:
            if len(self._spans) == self.max_spans:
                self.dropped += 1
            self._spans.append(span)
        return span

    def record_under(
        self, ctx: TraceContext, name: str, start_us: float, end_us: float,
        **kwargs,
    ) -> Span:
        """Record a span parented to ``ctx`` on its worker's track."""
        return self.record(
            name,
            ctx.worker or "host",
            start_us,
            end_us,
            parent_id=ctx.span_id,
            batch_id=ctx.batch_id,
            model=kwargs.pop("model", ctx.model),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # read-out
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def snapshot(self) -> dict:
        """JSON-able accounting for the metrics exporter."""
        with self._lock:
            return {
                "recorded": len(self._spans),
                "dropped": self.dropped,
                "max_spans": self.max_spans,
            }

    def request_tree(self, request_id: int) -> list[Span]:
        """Every span a request's id resolves to, root first.

        Starts at the request's root span, follows its ``batch_span``
        linkage to the owning batch, and collects the batch's whole
        subtree (checkout, cache/compile, execute/stage, transfer,
        respond) plus the request-scoped phases (queue_wait) — the
        "one id → the whole journey" contract of the tentpole.
        """
        spans = self.spans()
        by_parent: dict[int, list[Span]] = {}
        by_id: dict[int, Span] = {}
        for span in spans:
            by_id[span.id] = span
            if span.parent_id is not None:
                by_parent.setdefault(span.parent_id, []).append(span)
        roots = [
            s for s in spans
            if s.request_id == request_id and s.parent_id is None
        ]
        out: list[Span] = []
        seen: set[int] = set()

        def walk(span: Span) -> None:
            if span.id in seen:
                return
            seen.add(span.id)
            out.append(span)
            for child in by_parent.get(span.id, ()):
                walk(child)

        for root in roots:
            walk(root)
            batch_span = by_id.get(root.args.get("batch_span", -1))
            if batch_span is not None:
                walk(batch_span)
        return out

    def cycle_signature(self) -> list[tuple]:
        """The order-insensitive cycle-domain projection of the trace.

        Every chip-anchored span contributes ``(name, model, chip,
        cycles, events)`` where ``events`` are the dispatch events in
        (icu, cycle, mnemonic) form.  Host microseconds are excluded —
        they differ run to run — so two traces of the same work agree
        exactly iff the chips did cycle-identical work, which is how the
        dense-vs-fast-forward gate
        (:func:`repro.verify.lockstep.assert_trace_lockstep`) consumes
        it.  Sorted, so worker scheduling order cannot perturb it.
        """
        sig = []
        for span in self.spans():
            if span.cycles is None and not span.chip_events:
                continue
            events = tuple(
                (event.icu, event.cycle, event.mnemonic)
                for event in span.chip_events
            )
            sig.append(
                (span.name, span.model, span.chip, span.cycles, events)
            )
        sig.sort()
        return sig
