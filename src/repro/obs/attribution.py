"""Bottleneck attribution: where did the cycles go?

Turns one :class:`~repro.obs.counters.TelemetryCollector` into the
counter-driven performance explanation the TPU paper (Jouppi et al., ISCA
2017) made standard: a roofline placement per program *phase*, the top-k
busiest functional slices, and a stall taxonomy over the instruction
control units.  Because the TSP is fully deterministic, every number here
is a fact of the schedule, not a sampled estimate.

Phases are derived from the counter windows themselves: consecutive
windows with the same dominant activity class (``mxm`` / ``vxm`` / ``sxm``
/ ``mem`` / ``idle``) merge into one phase, each placed on the roofline by
its own operational intensity.  The report is emitted both as JSON
(schema ``tsp-obs/1``, the ``BENCH_obs.json`` artifact) and as a
human-readable text table via :func:`render_report`.
"""

from __future__ import annotations

import json

from ..baselines.roofline import Roofline

SCHEMA = "tsp-obs/1"

#: ops charged per counted unit when ranking a window's dominant activity
_DOMAIN_OPS = {
    "mxm": ("macc_ops", 2.0),  # each MACC is a multiply + an add
    "vxm": ("alu_ops", 1.0),
    "sxm": ("bytes", 1.0),
}


def _phase_windows(collector) -> list[dict]:
    """Per-window activity classes, ordered by window index."""
    width = collector.window_cycles
    n_windows = max(1, -(-max(1, collector.cycles) // width))
    series = {
        domain: collector.domain_windows(domain, counter)
        for domain, (counter, _w) in _DOMAIN_OPS.items()
    }
    mem = {}
    for counter in ("read_bytes", "write_bytes"):
        for w, v in collector.domain_windows("mem", counter).items():
            mem[w] = mem.get(w, 0) + v
    windows = []
    for w in range(n_windows):
        ops = {}
        for domain, (_counter, weight) in _DOMAIN_OPS.items():
            value = series[domain].get(w, 0)
            if value:
                ops[domain] = value * weight
        mem_bytes = mem.get(w, 0)
        if ops:
            dominant = max(ops, key=ops.get)
        elif mem_bytes:
            dominant = "mem"
        else:
            dominant = "idle"
        windows.append({
            "window": w,
            "class": dominant,
            "ops": sum(ops.values()),
            "mem_bytes": mem_bytes,
        })
    return windows


def _merge_phases(windows: list[dict], width: int) -> list[dict]:
    phases: list[dict] = []
    for win in windows:
        if phases and phases[-1]["class"] == win["class"]:
            phase = phases[-1]
            phase["end_window"] = win["window"]
            phase["ops"] += win["ops"]
            phase["mem_bytes"] += win["mem_bytes"]
        else:
            phases.append({
                "class": win["class"],
                "start_window": win["window"],
                "end_window": win["window"],
                "ops": win["ops"],
                "mem_bytes": win["mem_bytes"],
            })
    for phase in phases:
        phase["start_cycle"] = phase.pop("start_window") * width
        phase["end_cycle"] = (phase.pop("end_window") + 1) * width
    return phases


def _place_phases(phases: list[dict], roofline: Roofline) -> None:
    clock = roofline.clock_ghz
    for phase in phases:
        cycles = phase["end_cycle"] - phase["start_cycle"]
        seconds = cycles / (clock * 1e9)
        achieved = phase["ops"] / seconds / 1e12 if seconds else 0.0
        if phase["mem_bytes"] > 0:
            intensity = phase["ops"] / phase["mem_bytes"]
            bound = roofline.bound_for(intensity)
            attainable = roofline.attainable_teraops(intensity)
        else:
            intensity = None
            bound = "compute" if phase["ops"] else "idle"
            attainable = roofline.peak_teraops if phase["ops"] else 0.0
        phase["intensity_ops_per_byte"] = intensity
        phase["achieved_teraops"] = round(achieved, 6)
        phase["attainable_teraops"] = round(attainable, 6)
        phase["roofline_fraction"] = round(
            achieved / attainable, 6
        ) if attainable else 0.0
        phase["bound"] = bound


def _top_slices(collector, config, top_k: int) -> list[dict]:
    """Busiest units chip-wide, ranked by utilization of their own peak."""
    cycles = max(1, collector.cycles)
    totals = collector.totals()
    word = config.mem_word_bytes
    plane_peak = config.mxm_plane_rows * config.mxm_plane_cols
    ranked = []
    for unit, counters in totals.items():
        domain = unit.split(":", 1)[0]
        if domain == "mem":
            busy = (
                counters.get("read_bytes", 0) + counters.get("write_bytes", 0)
            ) / word
            detail = {
                "read_bytes": counters.get("read_bytes", 0),
                "write_bytes": counters.get("write_bytes", 0),
                "bank_conflicts": counters.get("bank_conflicts", 0),
            }
        elif domain == "mxm":
            busy = counters.get("macc_ops", 0) / plane_peak
            detail = {
                "macc_ops": counters.get("macc_ops", 0),
                "weight_bytes": counters.get("weight_bytes", 0),
            }
        elif domain == "vxm":
            busy = counters.get("alu_ops", 0) / config.n_lanes
            detail = {"alu_ops": counters.get("alu_ops", 0)}
        elif domain == "sxm":
            busy = counters.get("bytes", 0) / config.n_lanes
            detail = {"bytes": counters.get("bytes", 0)}
        else:  # icu / srf / c2c rank elsewhere
            continue
        ranked.append({
            "unit": unit,
            "utilization": round(min(1.0, busy / cycles), 6),
            "busy_cycles": round(busy, 3),
            **detail,
        })
    ranked.sort(key=lambda r: (-r["utilization"], r["unit"]))
    return ranked[:top_k]


def _stall_taxonomy(collector, config) -> dict:
    """Where ICU issue slots went: dispatching, stalled, parked, or idle.

    The three counted classes are disjoint by construction — an ICU
    dispatches at cycle ``c``, stalls over ``c+1 .. busy_until-1``, and a
    parked ICU counts ``park+1 .. release-1`` — so idle is the exact
    remainder of the issue-slot budget.
    """
    cycles = max(1, collector.cycles)
    dispatch = 0
    stall = 0
    parked = 0
    active_icus = 0
    deepest = {"icu": None, "iq_high_water_bytes": 0}
    for unit, counters in collector.totals().items():
        if not unit.startswith("icu:"):
            continue
        active_icus += 1
        dispatch += counters.get("dispatch_cycles", 0)
        stall += counters.get("stall_cycles", 0)
        parked += counters.get("parked_cycles", 0)
    for unit, scalars in collector.snapshot()["scalars"].items():
        high = scalars.get("iq_high_water_bytes", 0)
        if unit.startswith("icu:") and high > deepest["iq_high_water_bytes"]:
            deepest = {"icu": unit[4:], "iq_high_water_bytes": high}
    slots = config.n_icus * cycles
    idle = slots - dispatch - stall - parked
    return {
        "issue_slots": slots,
        "active_icus": active_icus,
        "dispatch_cycles": dispatch,
        "stall_cycles": stall,
        "parked_cycles": parked,
        "idle_cycles": idle,
        "dispatch_fraction": round(dispatch / slots, 6),
        "stall_fraction": round(stall / slots, 6),
        "parked_fraction": round(parked / slots, 6),
        "idle_fraction": round(idle / slots, 6),
        "deepest_queue": deepest,
    }


def attribute(
    collector,
    config=None,
    top_k: int = 8,
    name: str = "run",
) -> dict:
    """Full attribution report for one collected run.

    Requires the collector to have been bound to a chip (so it knows the
    :class:`~repro.config.ArchConfig`) unless ``config`` is passed.
    """
    config = config or collector.config
    if config is None:
        raise ValueError(
            "collector was never bound to a chip; pass config= explicitly"
        )
    roofline = Roofline(config)
    phases = _merge_phases(
        _phase_windows(collector), collector.window_cycles
    )
    _place_phases(phases, roofline)
    totals = collector.totals()
    total_ops = sum(
        counters.get("macc_ops", 0) * 2 + counters.get("alu_ops", 0)
        for counters in totals.values()
    )
    total_mem = sum(
        counters.get("read_bytes", 0) + counters.get("write_bytes", 0)
        for unit, counters in totals.items()
        if unit.startswith("mem:")
    )
    seconds = collector.cycles / (roofline.clock_ghz * 1e9)
    overall = {
        "cycles": collector.cycles,
        "total_ops": total_ops,
        "mem_bytes": total_mem,
        "intensity_ops_per_byte": (
            round(total_ops / total_mem, 6) if total_mem else None
        ),
        "achieved_teraops": (
            round(total_ops / seconds / 1e12, 6) if seconds else 0.0
        ),
        "peak_teraops": round(roofline.peak_teraops, 6),
        "ridge_intensity": round(roofline.ridge_intensity(), 6),
        "bound": (
            roofline.bound_for(total_ops / total_mem)
            if total_mem else "idle"
        ),
    }
    rollup = collector.rollup()
    return {
        "schema": SCHEMA,
        "name": name,
        "window_cycles": collector.window_cycles,
        "overall": overall,
        "phases": phases,
        "top_slices": _top_slices(collector, config, top_k),
        "stalls": _stall_taxonomy(collector, config),
        "activity_rollup": {
            "macc_ops": rollup.macc_ops,
            "alu_ops": rollup.alu_ops,
            "sram_read_bytes": rollup.sram_read_bytes,
            "sram_write_bytes": rollup.sram_write_bytes,
            "stream_hop_bytes": rollup.stream_hop_bytes,
            "sxm_bytes": rollup.sxm_bytes,
            "instructions": rollup.instructions,
        },
    }


def render_report(report: dict) -> str:
    """Human-readable rendering of one :func:`attribute` report."""
    lines = []
    overall = report["overall"]
    lines.append(f"== bottleneck attribution: {report['name']} ==")
    lines.append(
        f"cycles {overall['cycles']}  ops {overall['total_ops']}  "
        f"mem bytes {overall['mem_bytes']}"
    )
    intensity = overall["intensity_ops_per_byte"]
    lines.append(
        "roofline: "
        f"{overall['achieved_teraops']:.4f} / "
        f"{overall['peak_teraops']:.1f} TeraOps/s, "
        + (
            f"intensity {intensity:.3f} ops/B "
            f"(ridge {overall['ridge_intensity']:.1f}) -> "
            if intensity is not None else ""
        )
        + f"{overall['bound']}-bound"
    )
    lines.append("")
    lines.append("phases:")
    lines.append(
        "  cycles           class  ops          achieved/attainable TOps  "
        "bound"
    )
    for phase in report["phases"]:
        lines.append(
            f"  [{phase['start_cycle']:>6}, {phase['end_cycle']:>6})  "
            f"{phase['class']:>5}  {phase['ops']:<11.0f}  "
            f"{phase['achieved_teraops']:.4f} / "
            f"{phase['attainable_teraops']:<8.4f}"
            f"          {phase['bound']}"
        )
    lines.append("")
    lines.append("top slices (by utilization of own peak):")
    for entry in report["top_slices"]:
        extras = ", ".join(
            f"{k}={v}" for k, v in entry.items()
            if k not in ("unit", "utilization", "busy_cycles")
        )
        lines.append(
            f"  {entry['unit']:<16} {entry['utilization']:>8.2%}  {extras}"
        )
    stalls = report["stalls"]
    lines.append("")
    lines.append(
        "icu issue slots: "
        f"{stalls['dispatch_fraction']:.2%} dispatch, "
        f"{stalls['stall_fraction']:.2%} stalled, "
        f"{stalls['parked_fraction']:.2%} parked, "
        f"{stalls['idle_fraction']:.2%} idle"
    )
    deepest = stalls["deepest_queue"]
    if deepest["icu"]:
        lines.append(
            f"deepest instruction queue: {deepest['icu']} "
            f"({deepest['iq_high_water_bytes']} bytes high water)"
        )
    return "\n".join(lines) + "\n"


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
