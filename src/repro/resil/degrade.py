"""Degraded-mode recompilation: route around dead hardware.

The TSP's determinism makes graceful degradation a *compiler* feature,
not a runtime one: there is no arbiter to mask a dead SRAM tile or a
dark C2C cable, so resilience means re-planning the schedule against a
:class:`Blacklist` of failed resources and proving the result still
computes the same bits.

Three degradation axes are supported:

* **Dead MEM slice** — the allocator simply never places tensors there
  (:class:`repro.compiler.allocator.MemoryAllocator`); the rotation and
  nearness policies fall onto the remaining healthy slices.
* **Dead MXM plane** — the scheduler steers matmuls to the surviving
  planes (:meth:`repro.compiler.scheduler.Scheduler._pick_mxm_plane`),
  trading throughput (fewer planes to round-robin over) for correctness.
* **Dead C2C cable** — ring traffic is re-routed the long way around
  (:func:`plan_ring_route`), and :func:`build_ring_transfer` emits the
  fully timed store-and-forward programs for the surviving path.

:func:`assert_avoids` is the independent check that a recompiled program
really keeps off the blacklist — it scans the placed memory image and
every ICU the program dispatches to, so a scheduler regression cannot
silently re-use dead hardware.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from ..arch.geometry import Direction, Hemisphere, SliceKind
from ..compiler.partition import TimedProgram
from ..errors import C2cLinkError, CompileError, MemoryFaultError
from ..isa.c2c import Deskew, Receive, Send
from ..isa.mem import Read
from ..isa.program import IcuId, Program


@dataclass(frozen=True)
class Blacklist:
    """Failed resources a degraded-mode compile must route around.

    * ``mem_slices`` — ``(hemisphere, slice_index)`` pairs of dead SRAM
      tiles.
    * ``mxm_planes`` — ``(hemisphere, plane)`` pairs of dead 160x160
      MXM planes.
    * ``ring_cables`` — indices ``i`` of dead ring cables, where cable
      ``i`` is the bidirectional East(i) <-> West(i+1) hop of
      :meth:`repro.sim.MultiChipSystem.ring`.
    """

    mem_slices: frozenset = frozenset()
    mxm_planes: frozenset = frozenset()
    ring_cables: frozenset = frozenset()

    def __bool__(self) -> bool:
        return bool(self.mem_slices or self.mxm_planes or self.ring_cables)

    def describe(self) -> str:
        parts = []
        for hemisphere, s in sorted(
            self.mem_slices, key=lambda p: (p[0].value, p[1])
        ):
            parts.append(f"MEM_{hemisphere.value}{s}")
        for hemisphere, plane in sorted(
            self.mxm_planes, key=lambda p: (p[0].value, p[1])
        ):
            parts.append(f"MXM_{hemisphere.value}.plane{plane}")
        for cable in sorted(self.ring_cables):
            parts.append(f"ring-cable{cable}")
        return ", ".join(parts) if parts else "(empty)"


_MEM_UNIT = re.compile(r"MEM_([WE])(\d+)")
_C2C_UNIT = re.compile(r"C2C_([WE])")


def blacklist_from_fault(
    error: BaseException,
    *,
    chip_index: int = 0,
    n_chips: int = 1,
) -> Blacklist | None:
    """Localize a hardware fault into a :class:`Blacklist`, if possible.

    Reads the chip/cycle/unit context :class:`~repro.errors.TspError`
    carries: a :class:`~repro.errors.MemoryFaultError` naming a
    ``MEM_W3``-style unit blacklists that slice; a
    :class:`~repro.errors.C2cLinkError` naming a ``C2C_E``/``C2C_W``
    endpoint on a ring of ``n_chips >= 3`` blacklists the cable behind it
    (``chip_index`` is the faulting chip's ring position; cable ``i`` is
    the East(i) <-> West(i+1) hop).  A 2-chip ring has no alternate arc
    to re-route over, so its link faults — like watchdog fires and
    unattributable errors — return ``None``: not localizable, handle as
    transient.
    """
    unit = getattr(error, "unit", None)
    if unit is None:
        return None
    unit = str(unit)
    if isinstance(error, MemoryFaultError):
        m = _MEM_UNIT.fullmatch(unit)
        if m:
            hemisphere = (
                Hemisphere.WEST if m.group(1) == "W" else Hemisphere.EAST
            )
            return Blacklist(
                mem_slices=frozenset({(hemisphere, int(m.group(2)))})
            )
    if isinstance(error, C2cLinkError) and n_chips >= 3:
        m = _C2C_UNIT.fullmatch(unit)
        if m:
            cable = (
                chip_index
                if m.group(1) == "E"
                else (chip_index - 1) % n_chips
            )
            return Blacklist(ring_cables=frozenset({cable}))
    return None


def compile_degraded(builder, blacklist: Blacklist):
    """Recompile a builder's program against a blacklist.

    ``builder`` is a :class:`repro.compiler.api.StreamProgramBuilder`;
    the returned :class:`~repro.compiler.api.CompiledProgram` is
    verified by :func:`assert_avoids` before it is handed back, so a
    compile that silently touched dead hardware raises here rather than
    producing wrong bits on a real degraded part.
    """
    compiled = builder.compile(blacklist=blacklist)
    assert_avoids(compiled, blacklist)
    return compiled


def assert_avoids(compiled, blacklist: Blacklist) -> None:
    """Prove a compiled program never touches blacklisted hardware.

    Checks both halves of the artifact: every placed word of the memory
    image (weights, constants, inputs, outputs) and every ICU the
    program dispatches instructions to.  MEM instructions can only be
    dispatched by the slice's own ICU and MXM work only by the plane's
    two queues, so the ICU scan covers all compute and data movement.
    """
    for word in compiled.memory_image:
        if (word.hemisphere, word.slice_index) in blacklist.mem_slices:
            raise CompileError(
                f"degraded-mode violation: memory image places a word at "
                f"blacklisted MEM_{word.hemisphere.value}{word.slice_index} "
                f"address {word.address}"
            )
    for spec in list(compiled.inputs.values()) + list(
        compiled.outputs.values()
    ):
        placements = (
            spec.layout.parallel
            if spec.layout.is_parallel
            else spec.layout.planes
        )
        for p in placements:
            if (p.hemisphere, p.slice_index) in blacklist.mem_slices:
                raise CompileError(
                    f"degraded-mode violation: tensor {spec.name} is laid "
                    f"out on blacklisted "
                    f"MEM_{p.hemisphere.value}{p.slice_index}"
                )
    for icu in compiled.program.icus:
        address = icu.address
        if address.kind is SliceKind.MEM:
            key = (address.hemisphere, address.index)
            if key in blacklist.mem_slices:
                raise CompileError(
                    f"degraded-mode violation: program dispatches to the "
                    f"ICU of blacklisted {address}"
                )
        elif address.kind is SliceKind.MXM:
            plane = icu.unit // 2
            if (address.hemisphere, plane) in blacklist.mxm_planes:
                raise CompileError(
                    f"degraded-mode violation: program dispatches to "
                    f"blacklisted {address} plane {plane}"
                )


# ----------------------------------------------------------------------
# Ring re-routing


def plan_ring_route(
    n_chips: int,
    src: int,
    dst: int,
    dead_cables: frozenset | set = frozenset(),
) -> list[int]:
    """Shortest healthy chip path around a ring with dead cables.

    Cable ``i`` is the bidirectional East(i) <-> West(i+1 mod n) hop; a
    dead cable kills both directions.  Returns the chip indices from
    ``src`` to ``dst`` inclusive, preferring the shorter arc, falling
    back to the longer one, and raising :class:`C2cLinkError` when the
    dead set disconnects the pair.
    """
    if not 0 <= src < n_chips or not 0 <= dst < n_chips:
        raise C2cLinkError(
            f"route endpoints {src}->{dst} outside ring of {n_chips}"
        )
    if src == dst:
        return [src]
    clockwise = [
        (src + k) % n_chips for k in range((dst - src) % n_chips + 1)
    ]
    counter = [
        (src - k) % n_chips for k in range((src - dst) % n_chips + 1)
    ]

    def healthy(path: list[int]) -> bool:
        for a, b in zip(path, path[1:]):
            cable = a if b == (a + 1) % n_chips else b
            if cable in dead_cables:
                return False
        return True

    candidates = [p for p in (clockwise, counter) if healthy(p)]
    if not candidates:
        raise C2cLinkError(
            f"no healthy ring route from chip {src} to chip {dst} — dead "
            f"cables {sorted(dead_cables)} disconnect them"
        )
    return min(candidates, key=len)


@dataclass
class RingTransferPlan:
    """A timed store-and-forward transfer along a ring route."""

    route: list[int]
    programs: list[Program]
    #: where the payload lands on the destination chip
    dst_hemisphere: Hemisphere | None
    stage_slice: int
    base_address: int
    n_words: int
    #: emplace cycle of the last vector on the destination chip
    last_emplace: int
    timed: list[TimedProgram] = field(repr=False, default_factory=list)


def build_ring_transfer(
    system,
    route: list[int],
    payload: np.ndarray,
    stage_slice: int = 0,
    base_address: int = 0,
    interval: int = 4,
) -> RingTransferPlan:
    """Fully timed multi-hop vector transfer along ``route``.

    The payload (``(n_words, n_lanes)`` uint8) is staged on the source
    chip; each hop Reads it back out of the staging slice, Sends it down
    the next cable, and the receiving chip's Receive emplaces it into
    *its* staging slice — classic deterministic store-and-forward, with
    every dispatch cycle computed here at plan time.  Receives are
    placed after :attr:`~repro.sim.c2c.C2cLink.arrival_latency`, so the
    plan already reserves the retransmission slack of any error model
    attached to the cables.

    Because a shortest ring route never reverses direction, data always
    lands in the hemisphere it will next depart *away* from (an eastward
    hop stages in WEST MEM, which feeds the EASTWARD stream path), so
    one staging convention serves every chip on the route.
    """
    n_chips = len(system.chips)
    chip0 = system.chips[0]
    floorplan = chip0.floorplan
    timing = chip0.timing
    payload = np.atleast_2d(np.asarray(payload, dtype=np.uint8))
    n_words = payload.shape[0]

    timed = [TimedProgram() for _ in range(n_chips)]
    if len(route) == 1:
        system.chips[route[0]].load_memory(
            Hemisphere.WEST, stage_slice, base_address, payload
        )
        return RingTransferPlan(
            route, [t.build() for t in timed], Hemisphere.WEST,
            stage_slice, base_address, n_words, 0, timed,
        )

    eastward = route[1] == (route[0] + 1) % n_chips
    direction = Direction.EASTWARD if eastward else Direction.WESTWARD
    # data flowing east departs from WEST-hemisphere MEM and vice versa
    stage_hemisphere = Hemisphere.WEST if eastward else Hemisphere.EAST
    out_hemisphere = Hemisphere.EAST if eastward else Hemisphere.WEST
    in_hemisphere = stage_hemisphere

    system.chips[route[0]].load_memory(
        stage_hemisphere, stage_slice, base_address, payload
    )

    mem_address = floorplan.mem_slice(stage_hemisphere, stage_slice)
    c2c_out = floorplan.c2c(out_hemisphere)
    hops = floorplan.delta(mem_address, c2c_out)
    probe_read = Read(address=0, stream=0, direction=direction)
    probe_send = Send(link=0, stream=0, direction=direction)
    probe_recv = Receive(link=0, mem_slice=0, address=0)
    d_read = probe_read.dfunc(timing)
    d_send_skew = probe_send.dskew(timing)
    d_recv = probe_recv.dfunc(timing)

    ready = 0  # cycle the staged payload (vector 0) is readable on route[0]
    last_emplace = 0
    for a, b in zip(route, route[1:]):
        if b != (route[1] - route[0] + a) % n_chips and n_chips > 2:
            # defensive: plan_ring_route never produces a reversing path
            raise C2cLinkError(
                f"ring route {route} reverses direction at chip {a}"
            )
        link = system.chips[a].c2c_unit(out_hemisphere).links[0]
        if link.peer is None:
            raise C2cLinkError(
                f"chip {a} {out_hemisphere.value}-link 0 is not wired — "
                f"route {route} crosses a missing cable"
            )
        mem_icu = IcuId(mem_address)
        send_icu = IcuId(c2c_out, 0)
        recv_icu = IcuId(floorplan.c2c(in_hemisphere), 0)
        t_capture0 = ready + d_read + hops
        # calibrate the egress once, well before the first capture
        timed[a].at(send_icu, ready, Deskew(link=0))
        for i in range(n_words):
            t_read = ready + i * interval
            t_capture = t_read + d_read + hops
            t_emplace = t_capture + link.arrival_latency
            timed[a].at(
                mem_icu, t_read,
                Read(address=base_address + i, stream=0, direction=direction),
            )
            timed[a].at(
                send_icu, t_capture - d_send_skew,
                Send(link=0, stream=0, direction=direction),
            )
            timed[b].at(
                recv_icu, t_emplace - d_recv,
                Receive(
                    link=0, mem_slice=stage_slice,
                    address=base_address + i,
                ),
            )
            last_emplace = t_emplace
        # next hop may read vector 0 the cycle after it is emplaced
        ready = t_capture0 + link.arrival_latency + 1

    return RingTransferPlan(
        route, [t.build() for t in timed], in_hemisphere,
        stage_slice, base_address, n_words, last_emplace, timed,
    )


def read_transferred(system, plan: RingTransferPlan) -> np.ndarray:
    """Read a completed transfer's payload back off the destination chip."""
    dst = system.chips[plan.route[-1]]
    return dst.read_memory(
        plan.dst_hemisphere, plan.stage_slice, plan.base_address,
        plan.n_words,
    )
