"""Chip health monitoring: CSR polling, wearout trends, and the watchdog.

Section II-D's fleet-health story: every automatically corrected soft
error is logged to a CSR, and accumulating corrections are an early
wearout signal used to identify marginal chips before they fail.  A
:class:`HealthMonitor` polls that CSR model together with the C2C link
fault counters (:class:`repro.sim.c2c.C2cLink`) into per-chip
:class:`HealthReport` snapshots and tracks the correction *trend* across
polls.

The :class:`Watchdog` is the liveness half: armed on a chip
(:meth:`repro.sim.chip.TspChip.arm_watchdog`), it aborts a run whose
deadline passes with work still unfinished — hung ICU queues, a barrier
release that never comes from a peer chip, a serving deadline missed.
The check is exact under fast-forward: the skip horizon is clamped to the
deadline, so the dense and skipping cores fault at the same cycle with
the same architectural state, and a healthy run that finishes before the
deadline is untouched in both.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..arch.geometry import Hemisphere
from ..sim.chip import TspChip

#: default CSR correction count at which a chip is flagged marginal
#: (mirrors FaultInjector.wearout_flag)
WEAROUT_THRESHOLD = 10


@dataclass(frozen=True)
class Watchdog:
    """A deadline monitor for :meth:`TspChip.arm_watchdog`.

    ``deadline`` is a cycle number of the *current run*; if the program
    has not finished when it is reached, the run aborts with a
    :class:`~repro.errors.WatchdogError` naming the hung queues, the
    chip, and the cycle.
    """

    deadline: int
    label: str = "deadline"


@dataclass(frozen=True)
class LinkHealth:
    """Fault-counter snapshot of one C2C link endpoint."""

    unit: str
    link: int
    connected: bool
    deskewed: bool
    epoch: int
    sent: int
    received: int
    corrected: int
    retries: int
    uncorrectable: int
    dropped: int

    @property
    def failed(self) -> bool:
        return self.uncorrectable > 0 or self.dropped > 0

    @property
    def marginal(self) -> bool:
        return self.corrected > 0 or self.retries > 0


@dataclass(frozen=True)
class HealthReport:
    """One chip's health at one poll.

    ``verdict`` is ``"healthy"``, ``"marginal"`` (corrections accumulated
    — the early-wearout signal — or links needed FEC/retries), or
    ``"failed"`` (uncorrectable or lost transfers observed).
    """

    chip_id: int | str | None
    cycle: int
    ecc_corrections: int
    correction_delta: int
    wearout: bool
    links: tuple[LinkHealth, ...] = ()
    verdict: str = "healthy"

    def render(self) -> str:
        lines = [
            f"chip {self.chip_id if self.chip_id is not None else '?'} "
            f"@ cycle {self.cycle}: {self.verdict} "
            f"(ecc corrections {self.ecc_corrections}, "
            f"+{self.correction_delta} since last poll"
            f"{', WEAROUT' if self.wearout else ''})"
        ]
        for lh in self.links:
            lines.append(
                f"  {lh.unit}.link{lh.link}: sent {lh.sent} "
                f"recv {lh.received} corrected {lh.corrected} "
                f"retries {lh.retries} uncorrectable {lh.uncorrectable} "
                f"dropped {lh.dropped}"
                f"{' deskewed' if lh.deskewed else ''}"
            )
        return "\n".join(lines)


class HealthMonitor:
    """Polls chips into :class:`HealthReport` s and tracks wearout trends.

    The monitor is passive: it reads counters the simulator maintains
    anyway (the SRF correction CSR and the per-link fault counters), so
    an attached-but-idle monitor adds zero per-cycle cost to a run.

    Memory is bounded: both the per-chip poll history and the report log
    keep only the most recent ``history_cap`` entries — a serving worker
    polls between every batch, so a long-lived monitor must cost
    O(history_cap), not O(polls).  :meth:`trend` therefore measures the
    wearout slope over the retained window.
    """

    def __init__(
        self,
        wearout_threshold: int = WEAROUT_THRESHOLD,
        history_cap: int = 256,
    ) -> None:
        self.wearout_threshold = wearout_threshold
        self.history_cap = history_cap
        #: poll history per chip: recent (cycle, csr corrections) pairs
        self._history: dict[int, deque[tuple[int, int]]] = {}
        self.reports: deque[HealthReport] = deque(maxlen=history_cap)

    # ------------------------------------------------------------------
    def poll(self, chip: TspChip, cycle: int | None = None) -> HealthReport:
        """Snapshot one chip's CSRs and link counters."""
        if cycle is None:
            cycle = chip.now
        corrections = chip.srf.corrections
        history = self._history.setdefault(
            id(chip), deque(maxlen=self.history_cap)
        )
        previous = history[-1][1] if history else 0
        history.append((cycle, corrections))

        links = []
        for hemisphere in (Hemisphere.WEST, Hemisphere.EAST):
            unit = chip.c2c_unit(hemisphere)
            for link in unit.links:
                if link.peer is None and not link.sent_vectors:
                    continue  # unwired and silent: not worth reporting
                links.append(
                    LinkHealth(
                        unit=unit.name,
                        link=link.index,
                        connected=link.peer is not None,
                        deskewed=link.deskewed,
                        epoch=link.deskew_epoch,
                        sent=link.sent_vectors,
                        received=link.received_vectors,
                        corrected=link.corrected,
                        retries=link.retries,
                        uncorrectable=link.uncorrectable,
                        dropped=link.dropped,
                    )
                )

        wearout = corrections >= self.wearout_threshold
        if any(lh.failed for lh in links):
            verdict = "failed"
        elif wearout or any(lh.marginal for lh in links):
            verdict = "marginal"
        else:
            verdict = "healthy"
        report = HealthReport(
            chip_id=chip.chip_id,
            cycle=cycle,
            ecc_corrections=corrections,
            correction_delta=corrections - previous,
            wearout=wearout,
            links=tuple(links),
            verdict=verdict,
        )
        self.reports.append(report)
        return report

    def poll_system(self, system, cycle: int | None = None) -> list[HealthReport]:
        """Poll every chip of a :class:`~repro.sim.MultiChipSystem`."""
        return [self.poll(chip, cycle) for chip in system.chips]

    # ------------------------------------------------------------------
    def trend(self, chip: TspChip) -> float:
        """Mean CSR corrections accumulated per poll — the wearout slope.

        A rising value on a chip in steady-state traffic is the paper's
        early-wearout indicator: the same workload needing progressively
        more corrections marks a marginal part.
        """
        history = self._history.get(id(chip), [])
        if len(history) < 2:
            return 0.0
        first, last = history[0][1], history[-1][1]
        return (last - first) / (len(history) - 1)
