"""Campaign CLI: ``python -m repro.resil [--quick] [-o BENCH_resil.json]``."""

from __future__ import annotations

import argparse
import json
import sys

from .campaign import render_campaign, run_campaign


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resil",
        description="Run the deterministic resilience fault campaign.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller payloads for CI smoke runs",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the JSON report here (default: stdout summary only)",
    )
    args = parser.parse_args(argv)

    payload = run_campaign(quick=args.quick)
    print(render_campaign(payload))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    summary = payload["summary"]
    ok = (
        summary["detected"] == summary["n_scenarios"]
        and summary["recovered"] == summary["recovery_attempts"]
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
