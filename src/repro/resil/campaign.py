"""Deterministic fault campaigns over the simulated TSP.

A campaign is a fixed set of seeded fault scenarios spanning the three
resilience pillars — link-error recovery, health/watchdog detection, and
degraded-mode recompilation — each reporting the metrics the paper's
fleet-operations story cares about: *was the fault detected*, *how many
cycles after onset*, *did the system recover*, and *what did recovery
cost* (reserved slack, re-routed hops, degraded-schedule slowdown).

Every scenario is bit-deterministic: faults are pure functions of seeds
and sequence numbers, so a campaign re-run reproduces byte-identical
results — the property that makes a failing campaign entry a usable bug
report.  ``python -m repro.resil`` runs the campaign and emits
``BENCH_resil.json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..arch.geometry import Direction, Hemisphere
from ..config import ArchConfig
from ..errors import C2cLinkError, MemoryFaultError, WatchdogError
from ..isa.icu import Sync
from ..isa.mem import Read, Write
from ..isa.program import IcuId, Program
from ..sim.c2c import LinkErrorModel
from ..sim.chip import TspChip
from ..sim.faults import FaultInjector
from ..sim.multichip import MultiChipSystem
from ..verify.oracle import run_differential
from .degrade import (
    Blacklist,
    build_ring_transfer,
    compile_degraded,
    plan_ring_route,
    read_transferred,
)
from .health import HealthMonitor, Watchdog

SCHEMA = "tsp-resil-campaign/1"


@dataclass
class ScenarioResult:
    """Outcome of one fault scenario."""

    name: str
    fault: str
    detected: bool
    recovered: bool
    #: cycles from fault onset to the simulator surfacing it (0 when the
    #: fault is corrected transparently in the datapath)
    detection_latency: int = 0
    #: data bit-exact with the fault-free reference
    bit_exact: bool | None = None
    #: dense and fast-forward cores agree on cycles and bits
    deterministic: bool | None = None
    #: degraded-path cycles / healthy-path cycles (1.0 = free recovery)
    slowdown: float | None = None
    verdicts: list[str] = field(default_factory=list)
    notes: str = ""


def _payload(config: ArchConfig, n_words: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (n_words, config.n_lanes), dtype=np.uint8)


def _two_chip_transfer(
    config: ArchConfig,
    payload: np.ndarray,
    model: LinkErrorModel | None,
    fast_forward: bool = True,
):
    """Run one chip-0 -> chip-1 transfer, optionally through an error
    process on the cable; returns (landed, cycles, link, monitor)."""
    system = MultiChipSystem.ring(config, 2)
    if model is not None:
        system.set_link_error_model(0, Hemisphere.EAST, 0, model)
    plan = build_ring_transfer(system, [0, 1], payload)
    results = system.run(plan.programs, fast_forward=fast_forward)
    monitor = HealthMonitor()
    monitor.poll_system(system)
    landed = read_transferred(system, plan)
    # corrections/retries are counted where decode happens: the ingress
    ingress = system.chips[1].c2c_unit(Hemisphere.WEST).links[0]
    return landed, results[0].cycles, ingress, monitor


# ----------------------------------------------------------------------
# link-error scenarios


def scenario_correctable_link_noise(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """Seeded BER on a cable: FEC corrects in-line, bits and timing are
    identical to the fault-free run in both execution cores."""
    n_words = 4 if quick else 16
    payload = _payload(config, n_words, seed=11)
    # high enough that several vectors take a single-bit hit
    model = LinkErrorModel(seed=3, ber=2e-3, max_retries=1)
    clean, clean_cycles, _, _ = _two_chip_transfer(config, payload, None)
    noisy, noisy_cycles, link, monitor = _two_chip_transfer(
        config, payload, model
    )
    dense, dense_cycles, _, _ = _two_chip_transfer(
        config, payload, model, fast_forward=False
    )
    bit_exact = bool(
        np.array_equal(noisy, payload) and np.array_equal(clean, payload)
    )
    deterministic = bool(
        np.array_equal(noisy, dense) and noisy_cycles == dense_cycles
    )
    return ScenarioResult(
        name="correctable_link_noise",
        fault=f"ber={model.ber} seed={model.seed} on cable 0",
        detected=link.corrected > 0,
        recovered=bit_exact,
        detection_latency=0,
        bit_exact=bit_exact,
        deterministic=deterministic,
        slowdown=noisy_cycles / clean_cycles,
        verdicts=[r.verdict for r in monitor.reports],
        notes=f"{link.corrected} bits corrected across {n_words} vectors",
    )


def scenario_burst_retransmission(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """A burst makes the first copy uncorrectable; the pre-scheduled
    retransmission copy recovers inside the reserved slack."""
    n_words = 4 if quick else 8
    payload = _payload(config, n_words, seed=12)
    model = LinkErrorModel(seed=5, burst=(1, 2), max_retries=1)
    clean, clean_cycles, _, _ = _two_chip_transfer(config, payload, None)
    landed, cycles, link, monitor = _two_chip_transfer(config, payload, model)
    bit_exact = bool(np.array_equal(landed, payload))
    return ScenarioResult(
        name="burst_retransmission",
        fault="burst seqs 1-2 uncorrectable on first copy",
        detected=link.retries > 0,
        recovered=bit_exact,
        # the retry consumed exactly one extra link flight of the slack
        detection_latency=link.retry_latency,
        bit_exact=bit_exact,
        deterministic=None,
        slowdown=cycles / clean_cycles,
        verdicts=[r.verdict for r in monitor.reports],
        notes=(
            f"{link.retries} retransmission copies consumed; schedule "
            f"reserved {model.max_retries} per vector"
        ),
    )


def scenario_uncorrectable_abort(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """No retry budget and a burst hit: the Receive must abort with full
    chip/cycle/unit context rather than emplace corrupt data."""
    payload = _payload(config, 2, seed=13)
    model = LinkErrorModel(seed=5, burst=(0, 1), max_retries=0)
    try:
        _two_chip_transfer(config, payload, model)
    except C2cLinkError as fault:
        context_ok = (
            fault.chip_id is not None
            and fault.cycle is not None
            and fault.unit is not None
        )
        system = MultiChipSystem.ring(config, 2)
        link = system.chips[0].c2c_unit(Hemisphere.EAST).links[0]
        return ScenarioResult(
            name="uncorrectable_abort",
            fault="burst with max_retries=0 on cable 0",
            detected=True,
            recovered=False,
            # surfaced at the scheduled emplace: one link flight after
            # the corrupted capture left the sender
            detection_latency=link.latency,
            bit_exact=None,
            notes=f"aborted with context: {fault}"
            + ("" if context_ok else " [MISSING CONTEXT]"),
        )
    return ScenarioResult(
        name="uncorrectable_abort",
        fault="burst with max_retries=0 on cable 0",
        detected=False,
        recovered=False,
        notes="run completed but should have aborted",
    )


def scenario_dead_cable_reroute(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """A dark cable on the direct path: detection by the scheduled
    Receive, recovery by re-planning the transfer the long way around."""
    n_chips = 4
    payload = _payload(config, 2 if quick else 4, seed=14)
    dead_cable = 0  # East(0) <-> West(1)

    # healthy baseline: the one-hop direct route
    healthy = MultiChipSystem.ring(config, n_chips)
    direct = plan_ring_route(n_chips, 0, 1)
    plan = build_ring_transfer(healthy, direct, payload)
    healthy_cycles = healthy.run(plan.programs)[0].cycles

    # the same route over the now-dark cable aborts deterministically
    broken = MultiChipSystem.ring(config, n_chips)
    broken.set_link_error_model(
        0, Hemisphere.EAST, 0, LinkErrorModel(dead_after=0)
    )
    detected = False
    detection_cycle = 0
    try:
        bplan = build_ring_transfer(broken, direct, payload)
        broken.run(bplan.programs)
    except C2cLinkError as fault:
        detected = True
        detection_cycle = fault.cycle or 0

    # recovery: re-plan around the dead cable and run on a fresh system
    rerouted = MultiChipSystem.ring(config, n_chips)
    rerouted.set_link_error_model(
        0, Hemisphere.EAST, 0, LinkErrorModel(dead_after=0)
    )
    route = plan_ring_route(n_chips, 0, 1, {dead_cable})
    rplan = build_ring_transfer(rerouted, route, payload)
    rerouted_cycles = rerouted.run(rplan.programs)[0].cycles
    landed = read_transferred(rerouted, rplan)
    bit_exact = bool(np.array_equal(landed, payload))
    return ScenarioResult(
        name="dead_cable_reroute",
        fault=f"ring cable {dead_cable} dark",
        detected=detected,
        recovered=bit_exact,
        detection_latency=detection_cycle,
        bit_exact=bit_exact,
        slowdown=rerouted_cycles / healthy_cycles,
        notes=f"re-routed {direct} -> {route}",
    )


# ----------------------------------------------------------------------
# degraded-recompilation scenarios


def _matmul_builder(config: ArchConfig, seed: int):
    from ..compiler.api import StreamProgramBuilder

    rng = np.random.default_rng(seed)
    k, m, n = 32, 32, 4
    w = rng.integers(-8, 8, (k, m)).astype(np.int8)
    x = rng.integers(-8, 8, (n, k)).astype(np.int8)
    g = StreamProgramBuilder(config)
    r = g.matmul(w, g.constant_tensor("x", x))
    g.write_back(r, name="r")
    return g


def _degraded_scenario(
    name: str, config: ArchConfig, blacklist: Blacklist
) -> ScenarioResult:
    builder = _matmul_builder(config, seed=21)
    healthy = builder.compile()
    ref = run_differential(builder, compiled=healthy)
    degraded = compile_degraded(builder, blacklist)
    result = run_differential(builder, compiled=degraded)
    bit_exact = result.ok and all(
        np.array_equal(result.outputs[k], ref.outputs[k])
        for k in ref.outputs
    )
    return ScenarioResult(
        name=name,
        fault=f"blacklist: {blacklist.describe()}",
        detected=True,  # the blacklist *is* the detection input
        recovered=bool(bit_exact),
        bit_exact=bool(bit_exact),
        slowdown=result.run.cycles / ref.run.cycles,
        notes=(
            f"healthy {ref.run.cycles} cycles, degraded "
            f"{result.run.cycles} cycles"
        ),
    )


def scenario_dead_mem_slice(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """Dead SRAM tiles: the allocator places around them and the
    recompiled program still matches the interpreter bit-for-bit."""
    blacklist = Blacklist(
        mem_slices=frozenset(
            {(Hemisphere.EAST, 0), (Hemisphere.EAST, 1), (Hemisphere.WEST, 0)}
        )
    )
    return _degraded_scenario("dead_mem_slice", config, blacklist)


def scenario_dead_mxm_plane(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """A dead MXM plane: matmuls fall onto the surviving planes."""
    blacklist = Blacklist(
        mxm_planes=frozenset({(Hemisphere.WEST, 0), (Hemisphere.EAST, 0)})
    )
    return _degraded_scenario("dead_mxm_plane", config, blacklist)


# ----------------------------------------------------------------------
# health / watchdog scenarios


def scenario_sram_double_bit(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """An uncorrectable SRAM double: detected at consumption, aborts
    with location context, never silently forwards corrupt data."""
    chip = TspChip(config, chip_id=0, enable_ecc=True)
    rng = np.random.default_rng(31)
    data = rng.integers(0, 256, (1, config.n_lanes), dtype=np.uint8)
    chip.load_memory(Hemisphere.WEST, 0, 4, data)
    FaultInjector(chip).inject_double_sram_fault(
        Hemisphere.WEST, 0, address=4, bits=(3, 77)
    )
    program = Program()
    src = IcuId(chip.floorplan.mem_slice(Hemisphere.WEST, 0))
    dst = IcuId(chip.floorplan.mem_slice(Hemisphere.EAST, 0))
    program.add(
        src, Read(address=4, stream=0, direction=Direction.EASTWARD)
    )
    from ..isa.icu import Nop

    program.add(dst, Nop(6))
    program.add(
        dst, Write(address=9, stream=0, direction=Direction.EASTWARD)
    )
    try:
        chip.run(program)
    except MemoryFaultError as fault:
        context_ok = fault.chip_id is not None and fault.cycle is not None
        return ScenarioResult(
            name="sram_double_bit",
            fault="two bits flipped in one stored MEM word",
            detected=True,
            recovered=False,
            # checked at the Read that consumes the word
            detection_latency=fault.cycle or 0,
            notes=f"aborted with context: {fault}"
            + ("" if context_ok else " [MISSING CONTEXT]"),
        )
    return ScenarioResult(
        name="sram_double_bit",
        fault="two bits flipped in one stored MEM word",
        detected=False,
        recovered=False,
        notes="run completed but should have aborted",
    )


def scenario_watchdog_hang(
    config: ArchConfig, quick: bool
) -> ScenarioResult:
    """A cross-chip hang — one chip parks on a barrier its peer never
    releases — caught by the armed watchdog at its exact deadline."""
    deadline = 400
    system = MultiChipSystem.ring(config, 2)
    system.chips[1].arm_watchdog(Watchdog(deadline, "campaign"))
    hung = Program()
    icu = IcuId(system.chips[1].floorplan.mem_slice(Hemisphere.WEST, 0))
    hung.add(icu, Sync())  # no Notify anywhere: parks forever
    try:
        system.run([Program(), hung], max_cycles=100_000)
    except WatchdogError as fault:
        return ScenarioResult(
            name="watchdog_hang",
            fault="chip 1 parked on a barrier never released",
            detected=True,
            recovered=False,
            # the hang begins at park (cycle ~0); the watchdog bounds
            # detection at its deadline instead of max_cycles
            detection_latency=fault.cycle or deadline,
            notes=f"aborted with context: {fault}",
        )
    return ScenarioResult(
        name="watchdog_hang",
        fault="chip 1 parked on a barrier never released",
        detected=False,
        recovered=False,
        notes="run completed but should have hung until the watchdog",
    )


# ----------------------------------------------------------------------

SCENARIOS = [
    scenario_correctable_link_noise,
    scenario_burst_retransmission,
    scenario_uncorrectable_abort,
    scenario_dead_cable_reroute,
    scenario_dead_mem_slice,
    scenario_dead_mxm_plane,
    scenario_sram_double_bit,
    scenario_watchdog_hang,
]


def run_campaign(
    config: ArchConfig | None = None, quick: bool = False
) -> dict:
    """Run every scenario; return the ``BENCH_resil.json`` payload."""
    from ..testing import make_small_config

    config = config or make_small_config()
    results = [scenario(config, quick) for scenario in SCENARIOS]
    detected = sum(r.detected for r in results)
    recoverable = [r for r in results if r.bit_exact is not None]
    recovered = sum(r.recovered for r in recoverable)
    slowdowns = [r.slowdown for r in results if r.slowdown is not None]
    return {
        "schema": SCHEMA,
        "quick": quick,
        "scenarios": [asdict(r) for r in results],
        "summary": {
            "n_scenarios": len(results),
            "detected": detected,
            "detection_rate": detected / len(results),
            "recovery_attempts": len(recoverable),
            "recovered": recovered,
            "recovery_rate": (
                recovered / len(recoverable) if recoverable else None
            ),
            "max_degraded_slowdown": max(slowdowns) if slowdowns else None,
        },
    }


def render_campaign(payload: dict) -> str:
    lines = [f"resilience campaign ({payload['schema']})"]
    for s in payload["scenarios"]:
        flags = []
        flags.append("detected" if s["detected"] else "MISSED")
        if s["bit_exact"] is not None:
            flags.append("recovered" if s["recovered"] else "aborted")
        if s["slowdown"] is not None:
            flags.append(f"slowdown {s['slowdown']:.2f}x")
        if s["detection_latency"]:
            flags.append(f"latency {s['detection_latency']}")
        lines.append(f"  {s['name']:28s} {', '.join(flags)}")
        lines.append(f"      {s['fault']}; {s['notes']}")
    summary = payload["summary"]
    rate = summary["recovery_rate"]
    lines.append(
        f"  -- {summary['detected']}/{summary['n_scenarios']} detected, "
        f"recovery rate "
        f"{'n/a' if rate is None else f'{rate:.0%}'}, "
        f"max degraded slowdown "
        f"{summary['max_degraded_slowdown']:.2f}x"
    )
    return "\n".join(lines)
