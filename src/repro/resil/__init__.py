"""Resilience subsystem: fault campaigns, health monitoring, degradation.

Three pillars on top of the deterministic simulator:

* :mod:`repro.resil.health` — CSR/link-counter polling into per-chip
  :class:`HealthReport` s, wearout trends, and the :class:`Watchdog`
  that bounds hangs at an exact deadline in both execution cores.
* :mod:`repro.resil.degrade` — degraded-mode recompilation against a
  :class:`Blacklist` of dead hardware, plus ring re-routing and fully
  timed store-and-forward transfer plans.
* :mod:`repro.resil.campaign` — the seeded fault-campaign runner behind
  ``python -m repro.resil`` (detection latency, recovery rate, degraded
  slowdown -> ``BENCH_resil.json``).
"""

from .campaign import (
    SCENARIOS,
    ScenarioResult,
    render_campaign,
    run_campaign,
)
from .degrade import (
    Blacklist,
    RingTransferPlan,
    TimedProgram,
    assert_avoids,
    blacklist_from_fault,
    build_ring_transfer,
    compile_degraded,
    plan_ring_route,
    read_transferred,
)
from .health import (
    WEAROUT_THRESHOLD,
    HealthMonitor,
    HealthReport,
    LinkHealth,
    Watchdog,
)

__all__ = [
    "Blacklist",
    "HealthMonitor",
    "HealthReport",
    "LinkHealth",
    "RingTransferPlan",
    "SCENARIOS",
    "ScenarioResult",
    "TimedProgram",
    "WEAROUT_THRESHOLD",
    "Watchdog",
    "assert_avoids",
    "blacklist_from_fault",
    "build_ring_transfer",
    "compile_degraded",
    "plan_ring_route",
    "read_transferred",
    "render_campaign",
    "run_campaign",
]
