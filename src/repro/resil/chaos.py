"""Chaos campaign: the serving stack under live, seeded hardware faults.

``python -m repro.resil.chaos`` drives an open-loop request mix at a
live :class:`~repro.serve.InferenceServer` while injecting faults
mid-stream — a watchdog storm on a pooled chip, an FEC-swamping error
burst on one C2C cable of a sharded ring, a MEM slice dying under
traffic — and gates on the self-healing contract:

* **zero wrong answers** — every completed request is bit-identical to
  the healthy sequential oracle, no matter what failed underneath;
* **bounded recovery** — after the fault window closes (or, for the
  dead slice, while it persists), the pool returns to full capacity and
  all-ok waves within a bounded number of recovery waves;
* **graceful degradation** — requests lost during the window die with
  attributable outcomes (``retryable_exhausted``, ``shed``), never
  hangs or silent corruption.

Results (availability, p99 during vs after the fault, recovery wave
counts, health-event tallies) land in ``BENCH_chaos.json``; the exit
code is the gate, so CI can run ``--smoke`` directly.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..arch.geometry import Hemisphere
from ..config import ArchConfig, small_test_chip
from ..errors import RequestError, ServeError
from ..nn.layers import Dense, ReLU
from ..nn.model import Sequential
from ..nn.transformer import TransformerConfig
from ..sim.c2c import LinkErrorModel
from .health import Watchdog

SCHEMA = "tsp-chaos/1"

#: recovery must complete within this many post-fault waves
MAX_RECOVERY_WAVES = 12


def _make_single_chip_model(config: ArchConfig, seed: int):
    from ..serve import TransformerMlpServeModel

    return TransformerMlpServeModel(
        "mlp",
        TransformerConfig(
            d_model=16, n_heads=2, d_ff=32, seq_len=8, n_layers=1,
            vocab=64,
        ),
        config,
        seed=seed,
        max_vectors_per_program=8,
    )


def _make_sharded_model(config: ArchConfig, seed: int):
    from ..serve import ShardedCnnServeModel

    rng = np.random.default_rng(seed)
    model = Sequential([
        Dense(16, 32, rng=np.random.default_rng(seed + 1)),
        ReLU(),
        Dense(32, 8, rng=np.random.default_rng(seed + 2)),
    ])
    return ShardedCnnServeModel(
        "sharded", model, config, rng.standard_normal((16, 16)),
        n_chips=2, max_vectors_per_program=8,
    )


def _used_mem_slice(cache):
    """A (hemisphere, slice index) some cached program actually uses.

    The dead-slice scenario wants to kill SRAM the serving programs
    depend on — killing an unused slice proves nothing.  Input-tensor
    placements are ideal: the executor host-writes them every batch, so
    a dead slice there faults on the very next request.
    """
    for program in list(cache._programs.values()):
        for spec in getattr(program, "inputs", {}).values():
            layout = spec.layout
            placements = (
                layout.parallel if layout.is_parallel else layout.planes
            )
            for p in placements:
                return (p.hemisphere, p.slice_index)
    return (Hemisphere.WEST, 0)


@dataclass
class _Tally:
    """One scenario's request accounting."""

    outcomes: Counter = field(default_factory=Counter)
    during_s: list = field(default_factory=list)
    after_s: list = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.outcomes["ok"]

    @property
    def submitted(self) -> int:
        return sum(self.outcomes.values())


def _run_wave(
    server, model_name, payloads, references, tally, latencies,
    deadline_s=30.0,
) -> bool:
    """Submit one wave, resolve every future, verify every answer.

    Returns True when every request of the wave completed correctly.
    """
    futures = []
    for index, payload in enumerate(payloads):
        try:
            futures.append(
                (index, server.submit(model_name, payload,
                                      deadline_s=deadline_s))
            )
        except RequestError as error:
            tally.outcomes[error.outcome] += 1
        except ServeError:
            tally.outcomes["rejected"] += 1
    all_ok = len(futures) == len(payloads)
    for index, future in futures:
        error = future.error(timeout=120.0)
        if error is None:
            result = future.result()
            if np.array_equal(result.output, references[index]):
                tally.outcomes["ok"] += 1
                latencies.append(result.timing.total_s)
            else:
                tally.outcomes["wrong"] += 1
                all_ok = False
        else:
            tally.outcomes[getattr(error, "outcome", "failed")] += 1
            all_ok = False
    return all_ok


def _pool_restored(server) -> bool:
    pool = server.pool
    return (
        not pool.active_quarantined
        and pool.capacity() == len(pool.workers)
    )


def _run_scenario(
    name, server, model_name, *, seed, fault_waves, wave_size,
    inject, clear, restored,
) -> dict:
    """Warmup -> inject -> fault waves -> clear -> recovery loop."""
    rng = np.random.default_rng(seed)
    shape = server.models[model_name].payload_shape
    payloads = [rng.standard_normal(shape) for _ in range(wave_size)]
    references = [
        server.sequential_reference(model_name, p) for p in payloads
    ]
    tally = _Tally()
    try:
        warm_ok = _run_wave(
            server, model_name, payloads, references, tally,
            tally.after_s,
        )
        inject(server)
        for _ in range(fault_waves):
            _run_wave(
                server, model_name, payloads, references, tally,
                tally.during_s,
            )
        if clear is not None:
            clear(server)
        recovery_waves = 0
        recovered = False
        deadline = time.monotonic() + 120.0
        while recovery_waves < MAX_RECOVERY_WAVES:
            recovery_waves += 1
            wave_ok = _run_wave(
                server, model_name, payloads, references, tally,
                tally.after_s,
            )
            if wave_ok and restored(server):
                recovered = True
                break
            if time.monotonic() > deadline:
                break
            # give the background repair loop a beat between waves
            time.sleep(0.05)
        stats = server.stats()
    finally:
        server.close()

    def _p99_ms(samples):
        if not samples:
            return None
        return round(float(np.percentile(samples, 99)) * 1e3, 3)

    outcomes = dict(sorted(tally.outcomes.items()))
    return {
        "scenario": name,
        "warmup_ok": warm_ok,
        "outcomes": outcomes,
        "wrong_answers": tally.outcomes["wrong"],
        "completed": tally.completed,
        "submitted": tally.submitted,
        "availability": round(
            tally.completed / max(tally.submitted, 1), 4
        ),
        "retried": stats["requests"]["retried"],
        "shed": stats["requests"]["shed"],
        "quarantines": stats["pool"]["quarantines_total"],
        "repaired": stats["pool"]["repaired"],
        "worker_states": stats["pool"]["states"],
        "health_events": [e["kind"] for e in server.health_events],
        "p99_during_ms": _p99_ms(tally.during_s),
        "p99_after_ms": _p99_ms(tally.after_s),
        "recovery_waves": recovery_waves,
        "recovered": recovered,
    }


# ----------------------------------------------------------------------
# Scenarios


def _scenario_watchdog_storm(config, seed, fault_waves, wave_size):
    """A pooled chip starts tripping its watchdog at every checkout.

    Unlocalizable and persistent: requests retry onto the same chip,
    strikes accumulate, the chip is quarantined and the spare swaps in.
    When the storm passes, repair (scrub + clean probes) returns the
    chip as a spare — full capacity restored.
    """
    from ..serve import BatchPolicy, InferenceServer

    server = InferenceServer(
        config, [_make_single_chip_model(config, seed)],
        n_workers=1, n_spares=1,
        default_policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
    )
    worker = server.pool.workers[0]
    hardware = worker.hardware

    def inject(srv):
        srv.pool.attach_hardware_fault(
            hardware, "watchdog-storm",
            lambda chip: chip.arm_watchdog(
                Watchdog(deadline=1, label="chaos watchdog storm")
            ),
        )

    def clear(srv):
        srv.pool.detach_hardware_fault("watchdog-storm")

    return _run_scenario(
        "watchdog_storm", server, "mlp", seed=seed,
        fault_waves=fault_waves, wave_size=wave_size,
        inject=inject, clear=clear, restored=_pool_restored,
    )


def _scenario_link_ber_burst(config, seed, fault_waves, wave_size):
    """An error burst swamps FEC on one cable of a sharded 2-ring.

    Every pipeline transfer across the cable takes an uncorrectable hit
    with no retry budget -> :class:`C2cLinkError`.  A 2-ring has no
    alternate arc to re-route through, so the fault is transient-class:
    requests retry, the ring is quarantined, the spare ring swaps in.
    """
    from ..serve import BatchPolicy, InferenceServer

    server = InferenceServer(
        config, [_make_sharded_model(config, seed)],
        n_workers=1, n_chips=2, n_spares=1,
        default_policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
    )
    worker = server.pool.workers[0]
    hardware = worker.hardware
    burst = LinkErrorModel(
        seed=seed, burst=(0, 1 << 20), max_retries=0
    )

    def inject(srv):
        srv.pool.attach_hardware_fault(
            hardware, "ber-burst",
            lambda system: system.set_link_error_model(
                0, Hemisphere.EAST, 0, burst
            ),
        )

    def clear(srv):
        srv.pool.detach_hardware_fault("ber-burst")

    return _run_scenario(
        "link_ber_burst", server, "sharded", seed=seed,
        fault_waves=fault_waves, wave_size=wave_size,
        inject=inject, clear=clear, restored=_pool_restored,
    )


def _scenario_dead_mem_slice(config, seed, fault_waves, wave_size):
    """A MEM slice the serving programs depend on dies under traffic.

    Localizable: the fault names the slice, the worker blacklists it and
    recompiles every program around it — degraded-in-place serving, bit
    identical, no quarantine.  The slice stays dead (hard failure
    survives scrub), so "recovered" here means sustained all-ok waves
    *while degraded* at full capacity.
    """
    from ..serve import BatchPolicy, InferenceServer

    server = InferenceServer(
        config, [_make_single_chip_model(config, seed)],
        n_workers=1,
        default_policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
    )
    worker = server.pool.workers[0]

    def inject(srv):
        hemisphere, index = _used_mem_slice(srv.cache)
        worker.chip.mem_unit(hemisphere, index).mark_dead()

    def restored(srv):
        return (
            _pool_restored(srv)
            and worker.state == "degraded"
            and worker.blacklist is not None
        )

    return _run_scenario(
        "dead_mem_slice", server, "mlp", seed=seed,
        fault_waves=fault_waves, wave_size=wave_size,
        inject=inject, clear=None, restored=restored,
    )


SCENARIOS = {
    "watchdog_storm": _scenario_watchdog_storm,
    "link_ber_burst": _scenario_link_ber_burst,
    "dead_mem_slice": _scenario_dead_mem_slice,
}


# ----------------------------------------------------------------------


def run_chaos(
    seed: int = 0,
    smoke: bool = False,
    scenarios: list[str] | None = None,
    config: ArchConfig | None = None,
) -> dict:
    """Run the chaos campaign; returns the ``BENCH_chaos.json`` payload."""
    config = config or small_test_chip()
    fault_waves = 1 if smoke else 3
    wave_size = 4 if smoke else 8
    names = scenarios or list(SCENARIOS)
    results = []
    t0 = time.monotonic()
    for name in names:
        print(f"chaos: {name} ...", flush=True)
        result = SCENARIOS[name](config, seed, fault_waves, wave_size)
        results.append(result)
        print(
            f"  completed {result['completed']}/{result['submitted']} "
            f"wrong {result['wrong_answers']} "
            f"quarantines {result['quarantines']} "
            f"recovered {result['recovered']} "
            f"in {result['recovery_waves']} wave(s)",
            flush=True,
        )
    gates = {
        "wrong_answers": sum(r["wrong_answers"] for r in results) == 0,
        "all_recovered": all(r["recovered"] for r in results),
        "availability": all(r["availability"] >= 0.5 for r in results),
        "warmup": all(r["warmup_ok"] for r in results),
    }
    return {
        "schema": SCHEMA,
        "seed": seed,
        "smoke": smoke,
        "wall_s": round(time.monotonic() - t0, 3),
        "workload": {
            "fault_waves": fault_waves,
            "wave_size": wave_size,
            "max_recovery_waves": MAX_RECOVERY_WAVES,
        },
        "scenarios": {r["scenario"]: r for r in results},
        "gates": gates,
        "ok": all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.resil.chaos",
        description="Serve a live request mix while injecting hardware "
        "faults; gate on zero wrong answers and bounded recovery.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller waves for CI")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=sorted(SCENARIOS),
                        help="run only this scenario (repeatable)")
    parser.add_argument("-o", "--output", metavar="PATH",
                        default="BENCH_chaos.json")
    args = parser.parse_args(argv)

    payload = run_chaos(
        seed=args.seed, smoke=args.smoke, scenarios=args.scenario
    )
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for gate, passed in payload["gates"].items():
        print(f"  gate {gate}: {'PASS' if passed else 'FAIL'}")
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
