"""repro — a reproduction of the Groq Tensor Streaming Processor (ISCA 2020).

The package provides four layers:

* :mod:`repro.arch` / :mod:`repro.isa` — the architecture and instruction
  set as the paper defines them (geometry, streams, timing metadata,
  Table I instructions with binary encoding);
* :mod:`repro.sim` — a deterministic, cycle-accurate functional simulator
  of one or more TSP chips;
* :mod:`repro.compiler` — a producer-consumer stream compiler with a
  ``groq.api``-style frontend that schedules instructions in time and space;
* :mod:`repro.nn` / :mod:`repro.baselines` — the ResNet50/101/152 mapping,
  quantization machinery, deterministic performance model, and the baseline
  accelerator models used by the paper's evaluation.
"""

from .config import ArchConfig, groq_tsp_v1, small_test_chip
from .errors import (
    AllocationError,
    BankConflictError,
    CompileError,
    ConfigError,
    EncodingError,
    IqUnderflowError,
    IsaError,
    MemoryFaultError,
    ScheduleError,
    SimulationError,
    StreamContentionError,
    TspError,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "ArchConfig",
    "BankConflictError",
    "CompileError",
    "ConfigError",
    "EncodingError",
    "IqUnderflowError",
    "IsaError",
    "MemoryFaultError",
    "ScheduleError",
    "SimulationError",
    "StreamContentionError",
    "TspError",
    "__version__",
    "groq_tsp_v1",
    "small_test_chip",
]
