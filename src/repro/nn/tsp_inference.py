"""Run a trained CNN's inference on the simulated TSP.

This is the end-to-end deployment path of Section IV, at test-chip scale:
each convolution/dense layer is lowered to an im2col matmul, its weights
quantized to int8 (the paper's layer-based symmetric strategy), compiled to
a ``MatMul -> Requantize -> ReLU`` stream program, and executed on the
cycle-accurate simulator.  Host code performs only the data-layout glue the
paper's compiler also treats as layout (im2col patch extraction, pooling
subsampling, flattening); every multiply and every activation of the
network runs on the chip.

The runner calibrates per-layer activation scales on a calibration batch
(standard post-training quantization) and verifies against the host
reference path in :mod:`repro.nn.quantize`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..compiler import StreamProgramBuilder, execute
from ..config import ArchConfig
from ..errors import TspError
from ..obs import rtrace
from .layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, im2col
from .model import Sequential
from .quantize import calibrate


@dataclass
class CompiledLayer:
    """One conv/dense layer lowered to a TSP matmul program shape."""

    name: str
    kind: str  # "conv" or "dense"
    weight_q: np.ndarray  # int8 (K, M)
    weight_scale: float
    in_scale: float  # int8 quantization scale of the input activations
    out_scale: float | None  # requant scale target, None = emit int32
    bias: np.ndarray
    relu: bool
    conv: Conv2D | None = None
    #: activation rows one input contributes (im2col patches, or 1 for
    #: dense) — the pipeline partitioner's per-layer cost driver
    rows_per_input: int = 1


@dataclass
class TspForwardResult:
    """Outcome of one on-chip inference."""

    logits: np.ndarray
    total_cycles: int
    programs_run: int
    layer_cycles: dict[str, int] = field(default_factory=dict)


@dataclass
class ChunkRunStats:
    """Per-forward accounting the serving layer reads back.

    ``compile_s``/``execute_s`` split the host wall time of one forward
    between scheduling and simulation; the cache tallies distinguish
    programs replayed from the compiled-program cache from fresh lowers.
    """

    compile_s: float = 0.0
    execute_s: float = 0.0
    cycles: int = 0
    programs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def merge(self, other: "ChunkRunStats") -> None:
        self.compile_s += other.compile_s
        self.execute_s += other.execute_s
        self.cycles += other.cycles
        self.programs += other.programs
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses


def _pad_bucket(n_rows: int, cap: int) -> int:
    """Smallest power-of-two row count >= n_rows (min 8, capped)."""
    bucket = 8
    while bucket < n_rows:
        bucket *= 2
    return min(bucket, cap)


def build_chunk_builder(
    config: ArchConfig, layer: CompiledLayer, n_rows: int
) -> tuple[StreamProgramBuilder, list[tuple[str, int, int]]]:
    """Lower one (layer, row-count) shape to a reusable stream program.

    The activations enter as *input* tensors (bound per request at execute
    time) rather than baked-in constants, so the compiled program is a
    pure function of (weights, shape, dtype, config) — the cacheable unit
    of the serving layer: compile once per shape, replay for every batch.
    K dimensions beyond the lane count are split into K-tiles accumulated
    in the MXM.  Returns the builder plus the input binding plan as
    ``(input name, start column, end column)`` triples.
    """
    lanes = config.n_lanes
    k = layer.weight_q.shape[0]
    g = StreamProgramBuilder(config)
    if k <= lanes:
        bindings = [("acts", 0, k)]
        handles: object = g.input_tensor("acts", (n_rows, k))
    else:
        bindings = [
            (f"acts{i}", start, min(start + lanes, k))
            for i, start in enumerate(range(0, k, lanes))
        ]
        handles = [
            g.input_tensor(name, (n_rows, end - start))
            for name, start, end in bindings
        ]
    result_handle = g.matmul(layer.weight_q, handles, name="weights")
    g.write_back(result_handle, name="acc")
    return g, bindings


class TspCnnRunner:
    """Deploy a host-trained :class:`Sequential` CNN onto the simulator.

    Supported layer sequence: (Conv2D [ReLU] [MaxPool2D])* Flatten Dense.
    Each matrix layer becomes one compiled stream program; K dimensions
    larger than the lane count are K-tiled (accumulated in the MXM), and
    patch counts larger than the schedule window are processed in chunks.
    """

    def __init__(
        self,
        model: Sequential,
        config: ArchConfig,
        calibration: np.ndarray,
        max_vectors_per_program: int = 64,
    ) -> None:
        self.config = config
        self.max_vectors = max_vectors_per_program
        self.layers = self._lower(model, calibration)

    # ------------------------------------------------------------------
    def _lower(
        self, model: Sequential, calibration: np.ndarray
    ) -> list:
        """Walk the host model, quantize matrix layers, record structure."""
        lowered: list = []
        x = calibration
        pending: CompiledLayer | None = None
        matrix_index = 0
        for layer in model.layers:
            if isinstance(layer, Conv2D):
                pending = self._lower_matrix(layer, x, "conv", matrix_index)
                matrix_index += 1
                lowered.append(pending)
                x = layer.forward(x)
            elif isinstance(layer, Dense):
                pending = self._lower_matrix(layer, x, "dense", matrix_index)
                matrix_index += 1
                lowered.append(pending)
                x = layer.forward(x)
            elif isinstance(layer, ReLU):
                if pending is None:
                    raise TspError("ReLU without a preceding matrix layer")
                pending.relu = True
                x = layer.forward(x)
            elif isinstance(layer, MaxPool2D):
                lowered.append(layer)
                pending = None
                x = layer.forward(x)
            elif isinstance(layer, Flatten):
                lowered.append(layer)
                pending = None
                x = layer.forward(x)
            else:
                raise TspError(
                    f"{type(layer).__name__} is not supported on the TSP "
                    "runner"
                )
        # fix output scales: each matrix layer requantizes into the next
        # matrix layer's input scale; the final one emits int32
        matrices = [l for l in lowered if isinstance(l, CompiledLayer)]
        for layer, successor in zip(matrices, matrices[1:]):
            layer.out_scale = successor.in_scale
        matrices[-1].out_scale = None
        return lowered

    def _lower_matrix(self, layer, x, kind: str, index: int) -> CompiledLayer:
        w = layer.w  # (K, M)
        w_params = calibrate(w)
        w_q = np.clip(
            np.rint(w / float(w_params.scale)), -127, 127
        ).astype(np.int8)
        if kind == "conv":
            cols, _, _ = im2col(
                x, layer.kernel, layer.kernel, layer.stride, layer.pad
            )
            act_sample = cols
        else:
            act_sample = x.reshape(x.shape[0], -1)
        in_scale = float(calibrate(act_sample).scale)
        return CompiledLayer(
            name=f"{kind}{index}",
            kind=kind,
            weight_q=w_q,
            weight_scale=float(w_params.scale),
            in_scale=in_scale,
            out_scale=None,
            bias=layer.b,
            relu=False,
            conv=layer if kind == "conv" else None,
            rows_per_input=act_sample.shape[0] // x.shape[0],
        )

    @staticmethod
    def quantize_boundary(
        layer: CompiledLayer, acts: np.ndarray
    ) -> np.ndarray:
        """Quantize activations into ``layer``'s int8 input domain.

        This is exactly the rounding :meth:`_matrix_forward` applies, so
        a pipeline boundary may quantize the *compact* activation tensor
        before shipping it over C2C: ``rint``/``clip`` are elementwise
        and the consumer's layout glue (im2col, reshape, flatten) only
        copies elements or pads zeros — and a quantized zero is zero —
        so quantize-then-glue is bit-identical to glue-then-quantize.
        """
        return np.clip(
            np.rint(acts / layer.in_scale), -127, 127
        ).astype(np.int8)

    # ------------------------------------------------------------------
    def _run_matmul_chunk(
        self,
        layer: CompiledLayer,
        acts_q: np.ndarray,
        chip=None,
        cache=None,
        stats: ChunkRunStats | None = None,
        fast_forward: bool = True,
        blacklist=None,
    ) -> tuple[np.ndarray, int]:
        """Compile (or fetch from cache) and simulate one activation chunk.

        Returns the chip's int32 accumulators (bias and dequantization are
        applied by the caller, matching the reference quantized path).
        With a ``cache``, chunks are zero-padded up to a power-of-two row
        bucket (capped at ``max_vectors``) so every chunk of a layer
        replays one of a handful of compiled programs — per-row MXM
        results are independent, so padding never changes the real rows,
        and bucketing keeps a 1-row tail from simulating ``max_vectors``
        dead rows.  A ``blacklist`` (dead MEM slices / MXM planes) reaches
        the scheduler through the cache key, so degraded and healthy
        binaries for the same shape coexist in one cache.
        """
        n_rows = acts_q.shape[0]
        n_prog = _pad_bucket(n_rows, self.max_vectors) if cache is not None \
            else n_rows
        g, bindings = build_chunk_builder(self.config, layer, n_prog)
        if cache is not None:
            compiled, _key, hit, compile_s = cache.get_or_compile(
                g, blacklist=blacklist
            )
        else:
            t0 = time.perf_counter()
            compiled = g.compile(blacklist=blacklist)
            compile_s = time.perf_counter() - t0
            hit = False
        if n_prog != n_rows:
            padded = np.zeros((n_prog, acts_q.shape[1]), dtype=acts_q.dtype)
            padded[:n_rows] = acts_q
        else:
            padded = acts_q
        inputs = {
            name: padded[:, start:end] for name, start, end in bindings
        }
        ctx = rtrace.current()
        span_start = ctx.tracer.now_us() if ctx is not None else 0.0
        t0 = time.perf_counter()
        # without a cache the compiled program dies with this call, so
        # recording a replay plan onto it would be pure overhead
        result = execute(
            compiled, chip=chip, inputs=inputs, max_cycles=2_000_000,
            fast_forward=fast_forward, record=cache is not None,
        )
        execute_s = time.perf_counter() - t0
        if ctx is not None:
            # span start is the clock anchor: host µs of run cycle 0
            ctx.tracer.record_under(
                ctx, "execute", span_start, ctx.tracer.now_us(),
                chip=getattr(chip, "chip_id", None),
                cycles=result.run.cycles,
                clock_ghz=self.config.clock_ghz,
                chip_events=(
                    tuple(result.run.trace)
                    if ctx.tracer.chip_events else ()
                ),
                args={
                    "layer": layer.name, "rows": n_rows, "hit": hit,
                    "fast_forward": fast_forward,
                },
            )
        if stats is not None:
            stats.compile_s += compile_s
            stats.execute_s += execute_s
            stats.cycles += result.run.cycles
            stats.programs += 1
            if cache is not None:
                if hit:
                    stats.cache_hits += 1
                else:
                    stats.cache_misses += 1
        return result["acc"][:n_rows], result.run.cycles

    def _run_matmul_group(
        self,
        layer: CompiledLayer,
        group: list[np.ndarray],
        n_prog: int,
        chip,
        cache,
        stats: ChunkRunStats | None,
        fast_forward: bool,
        blacklist,
    ) -> tuple[list[np.ndarray], int] | None:
        """Run several same-bucket chunks as one batched plan replay.

        Returns ``None`` when the shared program has no usable
        :class:`~repro.sim.replay.ReplayPlan` yet (or the chip demands
        real simulation); the caller falls back to the per-chunk loop,
        whose first execution records the plan for next time.
        """
        from ..compiler.runner import execute_batched

        g, bindings = build_chunk_builder(self.config, layer, n_prog)
        compiled, _key, hit, compile_s = cache.get_or_compile(
            g, blacklist=blacklist
        )
        plan = compiled.replay
        if plan is None or not plan.ok or plan.fast_forward != fast_forward:
            return None
        inputs_list = []
        for chunk in group:
            if chunk.shape[0] != n_prog:
                padded = np.zeros(
                    (n_prog, chunk.shape[1]), dtype=chunk.dtype
                )
                padded[: chunk.shape[0]] = chunk
            else:
                padded = chunk
            inputs_list.append(
                {name: padded[:, start:end] for name, start, end in bindings}
            )
        ctx = rtrace.current()
        span_start = ctx.tracer.now_us() if ctx is not None else 0.0
        t0 = time.perf_counter()
        results = execute_batched(
            compiled, inputs_list, chip=chip, max_cycles=2_000_000
        )
        execute_s = time.perf_counter() - t0
        if results is None:
            return None
        n = len(group)
        cycles = plan.cycles * n
        if ctx is not None:
            ctx.tracer.record_under(
                ctx, "execute", span_start, ctx.tracer.now_us(),
                chip=getattr(chip, "chip_id", None),
                cycles=cycles,
                clock_ghz=self.config.clock_ghz,
                args={
                    "layer": layer.name, "batch": n,
                    "rows": sum(c.shape[0] for c in group),
                    "hit": hit, "replay": True,
                },
            )
        if stats is not None:
            stats.compile_s += compile_s
            stats.execute_s += execute_s
            stats.cycles += cycles
            stats.programs += n
            if hit:
                stats.cache_hits += n
            else:
                stats.cache_misses += n
        return (
            [
                res.outputs["acc"][: chunk.shape[0]]
                for res, chunk in zip(results, group)
            ],
            cycles,
        )

    def _matrix_forward(
        self,
        layer: CompiledLayer,
        acts: np.ndarray,
        chip=None,
        cache=None,
        stats: ChunkRunStats | None = None,
        prequantized: bool = False,
        fast_forward: bool = True,
        blacklist=None,
    ) -> tuple[np.ndarray, int]:
        """Quantize, run on chip (in chunks), dequantize + bias (+ReLU).

        ``prequantized`` activations arrive already in the layer's int8
        input domain (a pipeline stage boundary quantized them before
        shipping over C2C) and skip the rounding here.
        """
        if prequantized:
            acts_q = acts.astype(np.int8, copy=False)
        else:
            acts_q = self.quantize_boundary(layer, acts)
        chunks = []
        cycles = 0
        starts = list(range(0, acts_q.shape[0], self.max_vectors))
        i = 0
        while i < len(starts):
            group = [acts_q[starts[i] : starts[i] + self.max_vectors]]
            if cache is not None and chip is not None:
                # consecutive chunks sharing a pad bucket replay the same
                # compiled program — batch them through the recorded plan
                bucket = _pad_bucket(group[0].shape[0], self.max_vectors)
                while i + len(group) < len(starts):
                    nxt_start = starts[i + len(group)]
                    nxt = acts_q[nxt_start : nxt_start + self.max_vectors]
                    if _pad_bucket(nxt.shape[0], self.max_vectors) != bucket:
                        break
                    group.append(nxt)
                if len(group) >= 2:
                    batched = self._run_matmul_group(
                        layer, group, bucket, chip, cache, stats,
                        fast_forward, blacklist,
                    )
                    if batched is not None:
                        accs, group_cycles = batched
                        chunks.extend(accs)
                        cycles += group_cycles
                        i += len(group)
                        continue
            for chunk in group:
                acc, chunk_cycles = self._run_matmul_chunk(
                    layer, chunk, chip=chip, cache=cache, stats=stats,
                    fast_forward=fast_forward, blacklist=blacklist,
                )
                chunks.append(acc)
                cycles += chunk_cycles
            i += len(group)
        acc = np.vstack(chunks).astype(np.float64)
        out = acc * (layer.in_scale * layer.weight_scale) + layer.bias
        if layer.relu:
            out = np.maximum(out, 0)
        return out, cycles

    # ------------------------------------------------------------------
    def apply_layer(
        self,
        layer,
        current: np.ndarray,
        chip=None,
        cache=None,
        stats: ChunkRunStats | None = None,
        prequantized: bool = False,
        fast_forward: bool = True,
        blacklist=None,
    ) -> tuple[np.ndarray, int]:
        """Run one lowered layer; returns ``(activations, chip cycles)``.

        The unit of pipeline-parallel execution: a stage is a contiguous
        run of these calls against one designated chip, and
        ``prequantized`` marks the first matrix layer after a stage
        boundary (its int8 input arrived over C2C already quantized).
        Host layers (pooling, flatten) cost zero chip cycles.
        """
        if not isinstance(layer, CompiledLayer):
            return layer.forward(current), 0
        if layer.kind == "conv":
            conv = layer.conv
            cols, ho, wo = im2col(
                current, conv.kernel, conv.kernel, conv.stride, conv.pad
            )
            out, cycles = self._matrix_forward(
                layer, cols, chip=chip, cache=cache, stats=stats,
                prequantized=prequantized, fast_forward=fast_forward,
                blacklist=blacklist,
            )
            n = current.shape[0]
            return out.reshape(n, ho, wo, -1).transpose(0, 3, 1, 2), cycles
        return self._matrix_forward(
            layer,
            current.reshape(current.shape[0], -1),
            chip=chip,
            cache=cache,
            stats=stats,
            prequantized=prequantized,
            fast_forward=fast_forward,
            blacklist=blacklist,
        )

    def forward(
        self,
        x: np.ndarray,
        chip=None,
        cache=None,
        stats: ChunkRunStats | None = None,
        fast_forward: bool = True,
        blacklist=None,
    ) -> TspForwardResult:
        """Batch inference; every MAC runs on the simulated chip.

        ``chip`` reuses one (possibly pooled) simulator instance for every
        program instead of constructing a fresh chip per chunk; ``cache``
        is a compiled-program cache honouring ``get_or_compile(builder)``
        (see :class:`repro.serve.ProgramCache`); ``stats`` accumulates the
        compile/execute split the serving layer reports per request.
        Results are bit-identical with or without either: rows are
        processed independently on the MXM, and scheduling is a pure
        function of the lowered graph.
        """
        total_cycles = 0
        programs = 0
        layer_cycles: dict[str, int] = {}
        current = x
        for layer in self.layers:
            current, cycles = self.apply_layer(
                layer, current, chip=chip, cache=cache, stats=stats,
                fast_forward=fast_forward, blacklist=blacklist,
            )
            if isinstance(layer, CompiledLayer):
                total_cycles += cycles
                layer_cycles[layer.name] = cycles
                programs += 1
        return TspForwardResult(
            logits=current,
            total_cycles=total_cycles,
            programs_run=programs,
            layer_cycles=layer_cycles,
        )

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        result = self.forward(x)
        return float((result.logits.argmax(axis=1) == labels).mean())
