"""Sequential model container with quantized inference paths."""

from __future__ import annotations

import numpy as np

from .layers import Layer, softmax_cross_entropy
from .quantize import Strategy


class Sequential:
    """An ordered stack of layers with train/eval/quantized-eval paths."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = layers

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def quantized_forward(self, x: np.ndarray, strategy: Strategy) -> np.ndarray:
        for layer in self.layers:
            x = layer.quantized_forward(x, strategy)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params_and_grads(self):
        for layer in self.layers:
            yield from layer.params_and_grads()

    # ------------------------------------------------------------------
    def train_step(
        self, x: np.ndarray, labels: np.ndarray, lr: float = 0.01
    ) -> float:
        """One SGD step; returns the batch loss."""
        logits = self.forward(x, training=True)
        loss, grad = softmax_cross_entropy(logits, labels)
        self.backward(grad)
        for param, g in self.params_and_grads():
            param -= lr * g
        return loss

    def accuracy(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        strategy: Strategy | None = None,
        top_k: int = 1,
    ) -> float:
        """Top-k accuracy under an optional quantization strategy."""
        if strategy is None:
            logits = self.forward(x, training=False)
        else:
            logits = self.quantized_forward(x, strategy)
        top = np.argsort(-logits, axis=1)[:, :top_k]
        hits = (top == labels[:, None]).any(axis=1)
        return float(hits.mean())
