"""Mapping NN layers onto the TSP's functional slices.

Implements the deployment strategy Section IV describes: convolutions and
matmuls lower to weight tiles on the four 320x320 MXM planes; the 16 VXM
ALUs per lane requantize int32 results to int8 and apply ReLU *chained* on
the result streams (no extra cycles — the point of dataflow chaining);
pooling and tensor reshapes stream through the SXM.

Tiling policy for a lowered matmul K x M over N spatial positions:

* ``k_tiles = ceil(K / 320)``, ``m_tiles = ceil(M / 320)``, giving
  ``T = k_tiles * m_tiles`` weight tiles;
* if ``T <= 4`` the tiles are replicated across the planes and the spatial
  dimension is split ``floor(4 / T)`` ways — four simultaneous conv2d
  windows, the regime the paper's power plot shows as spikes;
* if ``T > 4`` the tiles run in ``ceil(T / 4)`` rounds of plane installs,
  streaming all N activations each round.

Weight installs cost ``ceil(rows*cols / (16 streams x 320 lanes))`` cycles
(20 for a full plane — the "409,600 weights in under 40 cycles" figure
covers all four planes fed by both hemispheres in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig
from .resnet import LayerKind, LayerSpec


@dataclass(frozen=True)
class LayerMapping:
    """How one layer uses the chip, before timing."""

    spec: LayerSpec
    k_tiles: int
    m_tiles: int
    rounds: int  # sequential install rounds
    spatial_split: int  # simultaneous plane copies of the same tile set
    install_cycles: int  # per round, per plane (parallel across planes)
    stream_cycles: int  # activation vectors streamed per round
    vxm_vectors: int  # vectors through the requant/activation chain
    sxm_vectors: int  # vectors through the SXM (pool/reshape)

    @property
    def is_matrix_op(self) -> bool:
        return self.spec.kind in (LayerKind.CONV, LayerKind.FC)

    @property
    def active_planes(self) -> int:
        """Planes busy during this layer's streaming phase."""
        if not self.is_matrix_op:
            return 0
        tiles = self.k_tiles * self.m_tiles
        return min(4, tiles * self.spatial_split)

    @property
    def mxm_utilization(self) -> float:
        """Fraction of the peak MACC array doing useful work."""
        if not self.is_matrix_op:
            return 0.0
        total_cycles = self.rounds * self.stream_cycles
        if total_cycles == 0:
            return 0.0
        peak = 4 * 320 * 320 * total_cycles
        return min(1.0, self.spec.macs / peak)


def map_layer(spec: LayerSpec, config: ArchConfig) -> LayerMapping:
    """Tile one layer onto the MXM/VXM/SXM."""
    lanes = config.n_lanes
    planes = config.mxm_planes
    if spec.kind in (LayerKind.CONV, LayerKind.FC):
        k_tiles = -(-spec.k_dim // lanes)
        m_tiles = -(-spec.m_dim // lanes)
        tiles = k_tiles * m_tiles
        if tiles <= planes:
            spatial_split = planes // tiles
            rounds = 1
            stream = -(-spec.n_spatial // spatial_split)
        else:
            spatial_split = 1
            rounds = -(-tiles // planes)
            stream = spec.n_spatial
        install = -(
            -(lanes * lanes) // (16 * lanes)
        )  # 20 cycles for a full 320x320 tile
        out_vectors = -(-spec.output_elements // lanes)
        return LayerMapping(
            spec=spec,
            k_tiles=k_tiles,
            m_tiles=m_tiles,
            rounds=rounds,
            spatial_split=spatial_split,
            install_cycles=install,
            stream_cycles=stream,
            vxm_vectors=out_vectors,  # requant + ReLU chained on results
            sxm_vectors=0,
        )
    # pooling / elementwise layers: pure streaming ops
    in_vectors = -(
        -(spec.in_channels * spec.in_size * spec.in_size) // lanes
    )
    out_vectors = -(-spec.output_elements // lanes)
    if spec.kind is LayerKind.ADD:
        # residual adds chain on the producing conv's result stream
        return LayerMapping(
            spec, 0, 0, 0, 0, 0, 0, vxm_vectors=out_vectors, sxm_vectors=0
        )
    if spec.kind is LayerKind.STREAM_EW:
        # softmax/normalization: chained VXM stages at stream rate
        vectors = -(-spec.n_spatial * spec.out_channels // lanes)
        return LayerMapping(
            spec, 0, 0, 0, 0, 0,
            stream_cycles=vectors,
            vxm_vectors=vectors,
            sxm_vectors=0,
        )
    # max/avg pool stream every input vector through SXM + VXM
    return LayerMapping(
        spec, 0, 0, 0, 0, 0,
        stream_cycles=in_vectors,
        vxm_vectors=out_vectors,
        sxm_vectors=in_vectors,
    )


def weight_install_summary(config: ArchConfig) -> dict[str, float]:
    """The Section V-b weight-load figure, from first principles.

    All four planes install simultaneously: each hemisphere's 32 streams
    (16 per plane x 2 planes per hemisphere... using both directions) feed
    16 streams x 320 lanes per plane per cycle.
    """
    lanes = config.n_lanes
    total_weights = config.mxm_macc_units  # 409,600 int8 weights
    per_cycle = config.mxm_planes * 16 * lanes  # bytes/cycle, all planes
    install = -(-total_weights // per_cycle)
    transit = config.mem_slices_per_hemisphere // 4 + 5  # SRAM + network
    return {
        "weights": total_weights,
        "install_cycles": install,
        "with_transit": install + transit,
        "claim_cycles": 40,
    }
