"""NN layers, quantization, ResNet mapping, and the performance model."""

from .dataset import SHAPE_NAMES, ShapeDataset, make_shapes
from .folding import fold_batchnorm_into_conv, fold_batchnorm_into_dense
from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Layer,
    MaxPool2D,
    ReLU,
    col2im,
    im2col,
    softmax_cross_entropy,
)
from .mapper import LayerMapping, map_layer, weight_install_summary
from .model import Sequential
from .perfmodel import (
    LayerEstimate,
    NetworkEstimate,
    SCHEDULE_SLACK,
    estimate_layer,
    estimate_network,
)
from .quantize import (
    QuantParams,
    Strategy,
    calibrate,
    dequantize,
    fake_quantize,
    quantize,
    quantized_matmul,
)
from .scaleout import ScaleOutEstimate, StagePlan, scale_out
from .resnet import (
    LayerKind,
    LayerSpec,
    RESNET_STAGES,
    resnet_layers,
    total_macs,
    total_weights,
)
from .training import TrainResult, make_small_cnn, train
from .transformer import (
    DecodeEstimate,
    TransformerConfig,
    TransformerEstimate,
    decode_layers,
    estimate_decode,
    estimate_transformer,
    transformer_layers,
    transformer_macs,
)
from .tsp_inference import CompiledLayer, TspCnnRunner, TspForwardResult

__all__ = [
    "BatchNorm",
    "Conv2D",
    "Dense",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "LayerEstimate",
    "LayerKind",
    "LayerMapping",
    "LayerSpec",
    "MaxPool2D",
    "NetworkEstimate",
    "QuantParams",
    "RESNET_STAGES",
    "ReLU",
    "SCHEDULE_SLACK",
    "SHAPE_NAMES",
    "Sequential",
    "ShapeDataset",
    "Strategy",
    "TrainResult",
    "calibrate",
    "col2im",
    "dequantize",
    "estimate_layer",
    "estimate_network",
    "fake_quantize",
    "fold_batchnorm_into_conv",
    "fold_batchnorm_into_dense",
    "im2col",
    "make_shapes",
    "make_small_cnn",
    "map_layer",
    "quantize",
    "quantized_matmul",
    "resnet_layers",
    "scale_out",
    "ScaleOutEstimate",
    "StagePlan",
    "softmax_cross_entropy",
    "total_macs",
    "total_weights",
    "train",
    "CompiledLayer",
    "TspCnnRunner",
    "TransformerConfig",
    "TransformerEstimate",
    "estimate_transformer",
    "DecodeEstimate",
    "decode_layers",
    "estimate_decode",
    "transformer_layers",
    "transformer_macs",
    "TspForwardResult",
    "weight_install_summary",
]
