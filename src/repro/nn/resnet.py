"""ResNet-50/101/152 architecture descriptions for the TSP mapper.

These are *structural* descriptions — per-layer tensor shapes and MAC
counts — consumed by the deterministic performance model.  Section IV-F of
the paper: "ResNet101 and ResNet152 match ResNet50's structure with the
exception of a repeated set of additional layers", which lets the TSP
project their throughput to the cycle; we reproduce exactly that
projection.

The widened variant (Section IV-E) pads bottleneck channel depths from
powers of two up toward the MXM's native 320-element dimension, adding
model capacity "for the same computational cost and latency" because the
misaligned 256-wide tiles under-utilized the 320x320 array anyway.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LayerKind(enum.Enum):
    CONV = "conv"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    FC = "fc"
    ADD = "add"  # residual elementwise add
    STREAM_EW = "stream_ew"  # streaming element-wise stage (softmax, norm)


@dataclass(frozen=True)
class LayerSpec:
    """One layer as the mapper sees it."""

    name: str
    kind: LayerKind
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_size: int  # square input spatial size
    out_size: int  # square output spatial size
    #: override for non-square N (sequence workloads: N = tokens x heads)
    n_override: int | None = None

    @property
    def k_dim(self) -> int:
        """Reduction dimension of the lowered matmul (C_in * kh * kw)."""
        return self.in_channels * self.kernel * self.kernel

    @property
    def m_dim(self) -> int:
        """Output-feature dimension of the lowered matmul."""
        return self.out_channels

    @property
    def n_spatial(self) -> int:
        """Output positions (matmul N dimension), batch 1."""
        if self.n_override is not None:
            return self.n_override
        return self.out_size * self.out_size

    @property
    def macs(self) -> int:
        """Multiply-accumulates for batch-1 inference."""
        if self.kind in (LayerKind.CONV, LayerKind.FC):
            return self.k_dim * self.m_dim * self.n_spatial
        return 0

    @property
    def weights(self) -> int:
        if self.kind in (LayerKind.CONV, LayerKind.FC):
            return self.k_dim * self.m_dim
        return 0

    @property
    def output_elements(self) -> int:
        return self.out_channels * self.n_spatial


#: (blocks per stage) for each ResNet depth
RESNET_STAGES: dict[int, tuple[int, int, int, int]] = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}
#: (bottleneck width, output width) per stage, standard ResNet
STAGE_CHANNELS = ((64, 256), (128, 512), (256, 1024), (512, 2048))
STAGE_SIZES = (56, 28, 14, 7)


def _bottleneck(
    name: str,
    in_channels: int,
    mid: int,
    out: int,
    size_in: int,
    stride: int,
) -> list[LayerSpec]:
    """One bottleneck block: 1x1 reduce, 3x3, 1x1 expand (+ projection)."""
    size_out = size_in // stride
    layers = [
        LayerSpec(
            f"{name}.conv1", LayerKind.CONV, in_channels, mid, 1, 1,
            size_in, size_in,
        ),
        LayerSpec(
            f"{name}.conv2", LayerKind.CONV, mid, mid, 3, stride,
            size_in, size_out,
        ),
        LayerSpec(
            f"{name}.conv3", LayerKind.CONV, mid, out, 1, 1,
            size_out, size_out,
        ),
    ]
    if stride != 1 or in_channels != out:
        layers.append(
            LayerSpec(
                f"{name}.proj", LayerKind.CONV, in_channels, out, 1, stride,
                size_in, size_out,
            )
        )
    layers.append(
        LayerSpec(
            f"{name}.add", LayerKind.ADD, out, out, 1, 1, size_out, size_out
        )
    )
    return layers


def resnet_layers(
    depth: int = 50,
    image_size: int = 224,
    n_classes: int = 1000,
    widened_to: int | None = None,
) -> list[LayerSpec]:
    """Full layer list for a ResNet of the given depth.

    ``widened_to`` pads every bottleneck/output channel count up to the
    nearest multiple of that value (the paper's 320-wide variant).
    """
    if depth not in RESNET_STAGES:
        raise ValueError(f"depth must be one of {sorted(RESNET_STAGES)}")

    def widen(c: int) -> int:
        """Pad channel depths up to tile multiples *where it is free*.

        Rounding 256 -> 320, 512 -> 640, 1024 -> 1280, 2048 -> 2240 keeps
        the same number of 320-wide MXM tiles a layer already occupied
        (the paper's "additional model capacity for the same computational
        cost"); narrower channels (64, 128) are left alone because padding
        them genuinely adds tiles.
        """
        if widened_to is None or c < 256:
            return c
        return -(-c // widened_to) * widened_to  # round up

    layers: list[LayerSpec] = [
        LayerSpec(
            "conv1", LayerKind.CONV, 3, widen(64), 7, 2,
            image_size, image_size // 2,
        ),
        LayerSpec(
            "maxpool", LayerKind.MAXPOOL, widen(64), widen(64), 3, 2,
            image_size // 2, image_size // 4,
        ),
    ]
    in_channels = widen(64)
    for stage, blocks in enumerate(RESNET_STAGES[depth]):
        mid, out = STAGE_CHANNELS[stage]
        mid, out = widen(mid), widen(out)
        size_in = STAGE_SIZES[stage] * (2 if stage > 0 else 1)
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers += _bottleneck(
                f"stage{stage + 1}.block{block + 1}",
                in_channels, mid, out,
                size_in if block == 0 else STAGE_SIZES[stage],
                stride,
            )
            in_channels = out
            size_in = STAGE_SIZES[stage]
    layers.append(
        LayerSpec(
            "avgpool", LayerKind.AVGPOOL, in_channels, in_channels, 7, 1,
            7, 1,
        )
    )
    layers.append(
        LayerSpec("fc", LayerKind.FC, in_channels, n_classes, 1, 1, 1, 1)
    )
    return layers


def total_macs(layers: list[LayerSpec]) -> int:
    return sum(layer.macs for layer in layers)


def total_weights(layers: list[LayerSpec]) -> int:
    return sum(layer.weights for layer in layers)
