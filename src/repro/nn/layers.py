"""Reference NN layers in numpy: forward and backward passes.

These implement the operator set ResNet-class models need — conv2d (via
im2col, the same lowering the TSP mapper uses), dense, max/avg pooling,
batch-norm, ReLU — with enough backward support to train the small CNNs the
quantization and model-capacity studies (Sections IV-D and IV-E) require.
Inference paths support the quantization strategies from
:mod:`repro.nn.quantize`.
"""

from __future__ import annotations

import numpy as np

from ..errors import TspError
from .quantize import Strategy, fake_quantize, quantized_matmul


class Layer:
    """Base layer: forward/backward plus (param, grad) exposure."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return []

    def quantized_forward(
        self, x: np.ndarray, strategy: Strategy
    ) -> np.ndarray:
        """Inference through the quantization strategy (default: fp path)."""
        out = self.forward(x, training=False)
        if strategy is Strategy.PER_OP:
            return fake_quantize(out)
        return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """(N, C, H, W) -> (N * Ho * Wo, C * kh * kw) patch matrix.

    This is exactly the graph lowering the TSP uses: a convolution becomes
    a matmul whose K dimension is C*kh*kw.
    """
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    ho = (h + 2 * pad - kh) // stride + 1
    wo = (w + 2 * pad - kw) // stride + 1
    cols = np.empty((n, c, kh, kw, ho, wo), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * ho
        for j in range(kw):
            j_end = j + stride * wo
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * ho * wo, -1)
    return cols, ho, wo


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    ho: int,
    wo: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add of patch gradients)."""
    n, c, h, w = x_shape
    x = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        i_end = i + stride * ho
        for j in range(kw):
            j_end = j + stride * wo
            x[:, :, i:i_end:stride, j:j_end:stride] += cols6[:, :, i, j]
    if pad:
        return x[:, :, pad:-pad, pad:-pad]
    return x


class Conv2D(Layer):
    """2-D convolution via im2col, NCHW layout."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.stride = stride
        self.kernel = kernel
        self.pad = kernel // 2 if pad is None else pad
        fan_in = in_channels * kernel * kernel
        self.w = rng.standard_normal(
            (fan_in, out_channels)
        ) * np.sqrt(2.0 / fan_in)
        self.b = np.zeros(out_channels)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._cache = None

    @property
    def out_channels(self) -> int:
        return self.w.shape[1]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, ho, wo = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        out = cols @ self.w + self.b
        n = x.shape[0]
        out = out.reshape(n, ho, wo, -1).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, cols, ho, wo)
        return out

    def quantized_forward(self, x: np.ndarray, strategy: Strategy) -> np.ndarray:
        cols, ho, wo = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        out = quantized_matmul(cols, self.w, strategy) + self.b
        n = x.shape[0]
        out = out.reshape(n, ho, wo, -1).transpose(0, 3, 1, 2)
        if strategy is Strategy.PER_OP:
            return fake_quantize(out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TspError("backward before forward(training=True)")
        x_shape, cols, ho, wo = self._cache
        n = grad.shape[0]
        grad2 = grad.transpose(0, 2, 3, 1).reshape(n * ho * wo, -1)
        self.dw = cols.T @ grad2
        self.db = grad2.sum(axis=0)
        dcols = grad2 @ self.w.T
        return col2im(
            dcols, x_shape, self.kernel, self.kernel, self.stride, self.pad,
            ho, wo,
        )

    def params_and_grads(self):
        return [(self.w, self.dw), (self.b, self.db)]


class Dense(Layer):
    """Fully connected layer on flattened inputs."""

    def __init__(
        self, in_features: int, out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.w = rng.standard_normal(
            (in_features, out_features)
        ) * np.sqrt(2.0 / in_features)
        self.b = np.zeros(out_features)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.w + self.b

    def quantized_forward(self, x: np.ndarray, strategy: Strategy) -> np.ndarray:
        out = quantized_matmul(x, self.w, strategy) + self.b
        if strategy is Strategy.PER_OP:
            return fake_quantize(out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.dw = self._x.T @ grad
        self.db = grad.sum(axis=0)
        return grad @ self.w.T

    def params_and_grads(self):
        return [(self.w, self.dw), (self.b, self.db)]


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class MaxPool2D(Layer):
    """Max pooling, NCHW.  The TSP maps this to SXM shifts + VXM max
    (the Figure 11 schedule)."""

    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        self.kernel = kernel
        self.stride = stride or kernel
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel, self.stride
        ho = (h - k) // s + 1
        wo = (w - k) // s + 1
        windows = np.empty((n, c, ho, wo, k * k), dtype=x.dtype)
        for i in range(k):
            for j in range(k):
                windows[..., i * k + j] = x[
                    :, :, i : i + s * ho : s, j : j + s * wo : s
                ]
        out = windows.max(axis=-1)
        if training:
            self._cache = (x.shape, windows.argmax(axis=-1), ho, wo)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, argmax, ho, wo = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel, self.stride
        dx = np.zeros(x_shape, dtype=grad.dtype)
        for i in range(k):
            for j in range(k):
                mask = argmax == (i * k + j)
                dx[:, :, i : i + s * ho : s, j : j + s * wo : s] += (
                    grad * mask
                )
        return dx


class GlobalAvgPool(Layer):
    def __init__(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        return np.broadcast_to(
            grad[:, :, None, None] / (h * w), self._shape
        ).copy()


class Flatten(Layer):
    def __init__(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class BatchNorm(Layer):
    """Batch normalization over (N, C, H, W) channels.

    At inference the affine form folds into the adjacent conv — which is why
    the TSP's quantized path sees only conv + requantize (Section IV).
    """

    def __init__(self, channels: int, momentum: float = 0.9) -> None:
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.dgamma = np.zeros(channels)
        self.dbeta = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = 1e-5
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        if training:
            self._cache = (x_hat, std)
        return (
            self.gamma[None, :, None, None] * x_hat
            + self.beta[None, :, None, None]
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, std = self._cache
        n = grad.shape[0] * grad.shape[2] * grad.shape[3]
        self.dgamma = (grad * x_hat).sum(axis=(0, 2, 3))
        self.dbeta = grad.sum(axis=(0, 2, 3))
        g = self.gamma[None, :, None, None]
        dx_hat = grad * g
        term = (
            dx_hat
            - dx_hat.mean(axis=(0, 2, 3), keepdims=True)
            - x_hat * (dx_hat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        )
        return term / std[None, :, None, None]

    def params_and_grads(self):
        return [(self.gamma, self.dgamma), (self.beta, self.dbeta)]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. logits."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = -np.log(probs[np.arange(n), labels] + 1e-12).mean()
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return float(loss), grad / n
