"""Batch-norm folding for inference graph lowering.

The TSP's quantized inference path sees only conv + requantize (+ ReLU):
batch normalization's affine transform is folded into the preceding
convolution's weights and bias before quantization, which is why Section IV
never schedules a standalone BN.  This module performs that lowering and is
used by the quantization studies.
"""

from __future__ import annotations

import numpy as np

from ..errors import TspError
from .layers import BatchNorm, Conv2D, Dense


def fold_batchnorm_into_conv(conv: Conv2D, bn: BatchNorm) -> Conv2D:
    """Return a new conv equivalent to ``bn(conv(x))`` at inference.

    With ``y = gamma * (w.x + b - mean) / sqrt(var + eps) + beta``, the
    folded parameters are ``w' = w * s`` and ``b' = (b - mean) * s + beta``
    where ``s = gamma / sqrt(var + eps)`` per output channel.
    """
    if conv.out_channels != bn.gamma.shape[0]:
        raise TspError(
            f"conv has {conv.out_channels} output channels, BN has "
            f"{bn.gamma.shape[0]}"
        )
    scale = bn.gamma / np.sqrt(bn.running_var + bn.eps)
    folded = Conv2D(
        in_channels=conv.w.shape[0] // (conv.kernel * conv.kernel),
        out_channels=conv.out_channels,
        kernel=conv.kernel,
        stride=conv.stride,
        pad=conv.pad,
    )
    folded.w = conv.w * scale[None, :]
    folded.b = (conv.b - bn.running_mean) * scale + bn.beta
    return folded


def fold_batchnorm_into_dense(dense: Dense, bn_scale: np.ndarray,
                              bn_shift: np.ndarray) -> Dense:
    """Fold a per-feature affine (scale, shift) into a dense layer."""
    if dense.w.shape[1] != bn_scale.shape[0]:
        raise TspError(
            f"dense has {dense.w.shape[1]} outputs, affine has "
            f"{bn_scale.shape[0]}"
        )
    folded = Dense(dense.w.shape[0], dense.w.shape[1])
    folded.w = dense.w * bn_scale[None, :]
    folded.b = dense.b * bn_scale + bn_shift
    return folded
