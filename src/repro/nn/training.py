"""Minimal numpy training loop for the accuracy studies."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import ShapeDataset
from .layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
)
from .model import Sequential


@dataclass
class TrainResult:
    model: Sequential
    losses: list[float]
    train_accuracy: float
    test_accuracy: float


def make_small_cnn(
    n_classes: int,
    channels: int = 8,
    image_size: int = 16,
    seed: int = 0,
) -> Sequential:
    """A two-conv CNN; ``channels`` scales capacity (the Section IV-E knob).

    The paper widened ResNet50's channels to fill the MXM's 320-element
    vector length "for the same computational cost and latency"; here the
    same study scales ``channels`` while the TSP mapper shows the padded
    tiles cost identical cycles.
    """
    rng = np.random.default_rng(seed)
    pooled = image_size // 4  # two 2x2 max pools
    return Sequential(
        [
            Conv2D(1, channels, kernel=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(channels, channels * 2, kernel=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(channels * 2 * pooled * pooled, n_classes, rng=rng),
        ]
    )


def train(
    model: Sequential,
    data: ShapeDataset,
    epochs: int = 6,
    batch_size: int = 32,
    lr: float = 0.05,
    seed: int = 0,
) -> TrainResult:
    """SGD with shuffling; deterministic given the seed."""
    rng = np.random.default_rng(seed)
    n = data.x_train.shape[0]
    losses = []
    for _epoch in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            loss = model.train_step(
                data.x_train[idx], data.y_train[idx], lr=lr
            )
            losses.append(loss)
    return TrainResult(
        model=model,
        losses=losses,
        train_accuracy=model.accuracy(data.x_train, data.y_train),
        test_accuracy=model.accuracy(data.x_test, data.y_test),
    )
