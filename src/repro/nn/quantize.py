"""Post-training quantization (Section IV-D of the paper).

The paper's initial ResNet50 deployment used *layer-based symmetric int8*
quantization for convolutions and matrix multiplies: inputs and weights of
each conv/matmul are quantized to int8, the MXM accumulates in int32, and
everything between matrix operations (batch-norm folding, residual adds,
activations) stays in higher precision.  That strategy lost only ~0.5%
accuracy versus quantizing *each operation's* output ("per-op"), which
re-quantizes after every op and compounds rounding error.

The paper also names the follow-up: *axis-based* (per-output-channel)
asymmetric quantization, which this module implements as
:data:`Strategy.PER_AXIS` so the E13 bench can show the expected ordering
per_axis <= layer_based < per_op in accuracy loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Strategy(enum.Enum):
    """Quantization granularity strategies compared in the paper."""

    LAYER_BASED = "layer"  # one symmetric scale per tensor (the paper's v1)
    PER_OP = "per_op"  # requantize after every operation (the baseline)
    PER_AXIS = "per_axis"  # per-output-channel scales (the paper's future work)


@dataclass(frozen=True)
class QuantParams:
    """Symmetric affine parameters: ``q = round(x / scale)``.

    ``scale`` is scalar for tensor-granularity strategies and a per-channel
    vector for :data:`Strategy.PER_AXIS`.
    """

    scale: np.ndarray  # scalar () or per-channel (C,)
    bits: int = 8

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def qmin(self) -> int:
        return -(1 << (self.bits - 1))


def calibrate(
    x: np.ndarray, bits: int = 8, axis: int | None = None
) -> QuantParams:
    """Pick symmetric scales from the data's absolute maximum."""
    if axis is None:
        amax = float(np.max(np.abs(x))) or 1.0
        scale = np.asarray(amax / ((1 << (bits - 1)) - 1))
    else:
        moved = np.moveaxis(x, axis, 0).reshape(x.shape[axis], -1)
        amax = np.max(np.abs(moved), axis=1)
        amax = np.where(amax == 0, 1.0, amax)
        scale = amax / ((1 << (bits - 1)) - 1)
    return QuantParams(scale=scale, bits=bits)


def quantize(x: np.ndarray, params: QuantParams, axis: int = 0) -> np.ndarray:
    """``q = clip(round(x / scale))`` as int8 (or wider for bits > 8)."""
    scale = params.scale
    if scale.ndim > 0:
        shape = [1] * x.ndim
        shape[axis] = -1
        scale = scale.reshape(shape)
    q = np.rint(x / scale)
    q = np.clip(q, params.qmin, params.qmax)
    dtype = np.int8 if params.bits <= 8 else np.int32
    return q.astype(dtype)


def dequantize(
    q: np.ndarray, params: QuantParams, axis: int = 0
) -> np.ndarray:
    scale = params.scale
    if scale.ndim > 0:
        shape = [1] * q.ndim
        shape[axis] = -1
        scale = scale.reshape(shape)
    return q.astype(np.float64) * scale


def fake_quantize(
    x: np.ndarray, bits: int = 8, axis: int | None = None
) -> np.ndarray:
    """Round-trip through the quantized grid (calibrate+quantize+dequantize).

    This is how the inference paths model quantization error without
    carrying explicit integer tensors everywhere.
    """
    params = calibrate(x, bits=bits, axis=axis)
    q = quantize(x, params, axis=axis or 0)
    return dequantize(q, params, axis=axis or 0)


def quantized_matmul(
    x: np.ndarray,
    w: np.ndarray,
    strategy: Strategy,
    bits: int = 8,
) -> np.ndarray:
    """A matmul as the TSP executes it: int8 x int8 -> int32 -> rescale.

    ``x`` is (N, K); ``w`` is (K, M).  Activations are always quantized
    per-tensor (they stream through one scale); weights follow the
    strategy: per-tensor for LAYER_BASED/PER_OP, per-output-column for
    PER_AXIS.
    """
    xp = calibrate(x, bits=bits)
    xq = quantize(x, xp).astype(np.int64)
    if strategy is Strategy.PER_AXIS:
        wp = calibrate(w, bits=bits, axis=1)
        wq = quantize(w, wp, axis=1).astype(np.int64)
        acc = xq @ wq  # int32-style accumulation
        return acc.astype(np.float64) * float(xp.scale) * wp.scale[None, :]
    wp = calibrate(w, bits=bits)
    wq = quantize(w, wp).astype(np.int64)
    acc = xq @ wq
    return acc.astype(np.float64) * float(xp.scale) * float(wp.scale)
