"""Synthetic image-classification dataset (the ImageNet substitution).

The paper's accuracy studies (Sections IV-D and IV-E) require a trained
image classifier.  Training ResNet50 on ImageNet is out of scope for a
simulator reproduction, so — per the substitution policy in DESIGN.md — we
generate a parametric shape-classification task: small grayscale images
containing one of several geometric shapes at random position/size/rotation
plus noise.  It exercises the same machinery (convs, pooling, quantized
inference, model-capacity scaling) with trainable-in-seconds models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SHAPE_NAMES = ["square", "circle", "cross", "triangle", "hbars", "vbars"]


def _draw_square(img: np.ndarray, cx: int, cy: int, r: int) -> None:
    img[max(cy - r, 0) : cy + r, max(cx - r, 0) : cx + r] = 1.0


def _draw_circle(img: np.ndarray, cx: int, cy: int, r: int) -> None:
    h, w = img.shape
    yy, xx = np.mgrid[0:h, 0:w]
    img[(yy - cy) ** 2 + (xx - cx) ** 2 <= r * r] = 1.0


def _draw_cross(img: np.ndarray, cx: int, cy: int, r: int) -> None:
    t = max(r // 3, 1)
    img[max(cy - t, 0) : cy + t, max(cx - r, 0) : cx + r] = 1.0
    img[max(cy - r, 0) : cy + r, max(cx - t, 0) : cx + t] = 1.0


def _draw_triangle(img: np.ndarray, cx: int, cy: int, r: int) -> None:
    h, w = img.shape
    yy, xx = np.mgrid[0:h, 0:w]
    inside = (
        (yy >= cy - r)
        & (yy <= cy + r)
        & (np.abs(xx - cx) <= (yy - (cy - r)) / 2 + 1)
    )
    img[inside] = 1.0


def _draw_hbars(img: np.ndarray, cx: int, cy: int, r: int) -> None:
    for row in range(max(cy - r, 0), min(cy + r, img.shape[0]), 3):
        img[row, max(cx - r, 0) : cx + r] = 1.0


def _draw_vbars(img: np.ndarray, cx: int, cy: int, r: int) -> None:
    for col in range(max(cx - r, 0), min(cx + r, img.shape[1]), 3):
        img[max(cy - r, 0) : cy + r, col] = 1.0


_DRAWERS = [
    _draw_square,
    _draw_circle,
    _draw_cross,
    _draw_triangle,
    _draw_hbars,
    _draw_vbars,
]


@dataclass
class ShapeDataset:
    """Train/test split of the synthetic shape task."""

    x_train: np.ndarray  # (N, 1, H, W) float
    y_train: np.ndarray  # (N,) int labels
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    @property
    def image_size(self) -> int:
        return self.x_train.shape[-1]


def make_shapes(
    n_train: int = 600,
    n_test: int = 200,
    image_size: int = 20,
    n_classes: int = 4,
    noise: float = 0.15,
    seed: int = 0,
) -> ShapeDataset:
    """Generate a deterministic shape-classification dataset."""
    if not 2 <= n_classes <= len(_DRAWERS):
        raise ValueError(f"n_classes must be 2..{len(_DRAWERS)}")
    rng = np.random.default_rng(seed)
    total = n_train + n_test
    x = np.zeros((total, 1, image_size, image_size), dtype=np.float64)
    y = rng.integers(0, n_classes, total)
    for i in range(total):
        r = int(rng.integers(image_size // 6, image_size // 3))
        cx = int(rng.integers(r + 1, image_size - r - 1))
        cy = int(rng.integers(r + 1, image_size - r - 1))
        _DRAWERS[y[i]](x[i, 0], cx, cy, r)
    x += rng.normal(0, noise, x.shape)
    x = (x - x.mean()) / (x.std() + 1e-9)
    return ShapeDataset(
        x_train=x[:n_train],
        y_train=y[:n_train],
        x_test=x[n_train:],
        y_test=y[n_train:],
        n_classes=n_classes,
    )
