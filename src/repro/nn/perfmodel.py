"""Deterministic performance and power model for whole networks.

The TSP has no caches, arbiters, or speculative structures, so layer
latency is a pure function of the schedule — the paper exploits exactly
this to project ResNet101/152 throughput "to the cycle" from ResNet50's
measured structure (Section IV-F).  This model computes per-layer cycles
from the mapper's tiling (installs, streaming, pipeline fill), integrates
the per-op energy model over the same schedule for the Figure 10 power
trace, and reports network latency/throughput for batch-1 inference.

Two scheduling modes reproduce the Section IV-C optimization study:

* ``optimized=False`` — the first ResNet50 revision: each layer's pipeline
  fills and drains serially ("latency bubbles were created as the pipeline
  filled and emptied"), and the next layer cannot start until results are
  committed;
* ``optimized=True`` — the improved memory allocation: tensors distributed
  across slices with bank interleaving so a layer's reads begin before the
  previous layer finishes writing, hiding most of the fill/drain bubble
  and overlapping weight installs with streaming (double-buffered via the
  LW staging buffer).

The model is calibrated to the paper's operating point (20.4K IPS at the
900 MHz nominal clock) through ``SCHEDULE_SLACK``, a single factor
representing second-order schedule losses (VXM serialization depth, memory
contention, quantization bookkeeping) that a cycle-exact compiler would
expose layer by layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.power import ActivityCounts, PowerModel
from ..arch.timing import TimingModel
from ..config import ArchConfig
from .mapper import LayerMapping, map_layer
from .resnet import LayerKind, LayerSpec

#: Second-order schedule losses versus the ideal tiling model (see module
#: docstring).  Calibrated once against the paper's ResNet50 operating
#: point and then held fixed for ResNet101/152 and every ablation.
SCHEDULE_SLACK = 1.32


@dataclass
class LayerEstimate:
    """Cycle-exact (modelled) facts about one layer."""

    name: str
    kind: str
    cycles: int
    macs: int
    active_planes: int
    utilization: float
    power_w: float
    install_cycles: int
    stream_cycles: int
    bubble_cycles: int


@dataclass
class NetworkEstimate:
    """Whole-network estimate for batch-1 inference."""

    layers: list[LayerEstimate]
    config: ArchConfig
    optimized: bool
    total_cycles: int = 0

    def __post_init__(self) -> None:
        self.total_cycles = sum(layer.cycles for layer in self.layers)

    @property
    def latency_us(self) -> float:
        return self.total_cycles / (self.config.clock_ghz * 1e3)

    @property
    def ips(self) -> float:
        """Batch-1 images per second: each query is a separate inference."""
        return 1e6 / self.latency_us

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def average_power_w(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        energy = sum(
            layer.power_w * layer.cycles for layer in self.layers
        )
        return energy / self.total_cycles

    def power_trace(self) -> list[tuple[str, float]]:
        """(layer name, watts) series — the Figure 10 plot."""
        return [(layer.name, layer.power_w) for layer in self.layers]


def _pipeline_fill(config: ArchConfig, timing: TimingModel) -> int:
    """Cycles for one result to traverse read -> MXM -> VXM -> write."""
    transit = config.mem_slices_per_hemisphere // 2 + 4
    return (
        timing.functional_delay("Read")
        + transit
        + config.tiles_per_slice  # vertical SIMD stagger
        + timing.mxm_pipeline_depth(config.mxm_plane_rows)
        + timing.functional_delay("ACC")
        + timing.functional_delay("Convert")
        + timing.functional_delay("Write")
    )


def estimate_layer(
    mapping: LayerMapping,
    config: ArchConfig,
    timing: TimingModel | None = None,
    power: PowerModel | None = None,
    optimized: bool = True,
) -> LayerEstimate:
    """Cycle and power estimate for one mapped layer."""
    timing = timing or TimingModel()
    power = power or PowerModel()
    spec = mapping.spec
    fill = _pipeline_fill(config, timing)

    if mapping.is_matrix_op:
        install = mapping.install_cycles
        stream = mapping.stream_cycles
        if optimized:
            # double-buffered installs overlap streaming; fill mostly
            # hidden by bank-interleaved reads of the previous layer's
            # output (Section IV-C)
            compute = install + mapping.rounds * max(stream, install)
            bubble = fill // 3
        else:
            compute = mapping.rounds * (install + stream)
            bubble = fill + fill // 2  # fill and drain exposed
        cycles = int(compute * SCHEDULE_SLACK) + bubble
    elif spec.kind is LayerKind.ADD:
        # chained on the producing conv's result stream: only the ALU's
        # functional delay is exposed
        cycles = timing.functional_delay("BinaryOp")
        bubble = 0
        install = stream = 0
    else:  # pooling: stream through SXM + VXM
        stream = mapping.stream_cycles
        bubble = fill // 3 if optimized else fill
        cycles = int(stream * SCHEDULE_SLACK) + bubble
        install = 0

    activity = _layer_activity(mapping, config, cycles)
    power_w = power.average_power_w(config, activity)
    return LayerEstimate(
        name=spec.name,
        kind=spec.kind.value,
        cycles=max(cycles, 1),
        macs=spec.macs,
        active_planes=mapping.active_planes,
        utilization=mapping.mxm_utilization,
        power_w=power_w,
        install_cycles=install if mapping.is_matrix_op else 0,
        stream_cycles=mapping.stream_cycles,
        bubble_cycles=bubble,
    )


def _layer_activity(
    mapping: LayerMapping, config: ArchConfig, cycles: int
) -> ActivityCounts:
    """Dynamic-activity tally integrated over the layer's schedule."""
    spec = mapping.spec
    lanes = config.n_lanes
    plane_cells = config.mxm_plane_rows * config.mxm_plane_cols
    if spec.kind is LayerKind.ADD:
        # the residual add is chained on the producing conv's result
        # stream: its switching energy is charged to the conv's window,
        # so the standalone "layer" contributes almost nothing
        return ActivityCounts(
            cycles=cycles, alu_ops=lanes, instructions=cycles
        )
    macc = 0
    if mapping.is_matrix_op:
        streaming_cycles = mapping.rounds * mapping.stream_cycles
        # every active plane's array switches while streaming; padded
        # lanes toggle less, so charge useful MACs plus a fraction of the
        # idle cells
        busy = mapping.active_planes * plane_cells * streaming_cycles
        macc = spec.macs + int(0.25 * max(busy - spec.macs, 0))
    alu = mapping.vxm_vectors * lanes * 2  # requantize + activation
    sram_read = spec.weights + spec.in_channels * spec.in_size**2
    sram_write = spec.output_elements
    hops = (sram_read + sram_write) * (
        config.mem_slices_per_hemisphere // 2
    )
    return ActivityCounts(
        cycles=cycles,
        macc_ops=macc,
        alu_ops=alu,
        sram_read_bytes=sram_read,
        sram_write_bytes=sram_write,
        stream_hop_bytes=hops,
        sxm_bytes=mapping.sxm_vectors * lanes,
        instructions=cycles * 8,  # a handful of queues active per cycle
    )


def estimate_network(
    specs: list[LayerSpec],
    config: ArchConfig,
    optimized: bool = True,
    timing: TimingModel | None = None,
    power: PowerModel | None = None,
) -> NetworkEstimate:
    """Map and time a whole network for batch-1 inference."""
    timing = timing or TimingModel()
    power = power or PowerModel()
    layers = [
        estimate_layer(
            map_layer(spec, config), config, timing, power, optimized
        )
        for spec in specs
    ]
    return NetworkEstimate(layers=layers, config=config, optimized=optimized)
