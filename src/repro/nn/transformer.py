"""Transformer-layer mapping onto the TSP (an extension).

The paper's introduction names "attention and transformer models" among the
workloads motivating the TSP, but evaluates only ResNet.  This module
extends the same mapper/performance model to a decoder layer processing a
full sequence at batch 1 (prefill): every matmul — the QKV projections,
per-head attention scores, context gather, output projection, and the MLP —
lowers to MXM tiles exactly like a convolution does, and the softmax /
normalization stages stream through the VXM at line rate.

Attention's score and context matmuls have *dynamic* "weights" (K and V
are activations): on the TSP they are installed into the MXM per inference
like any weight tile, which the per-inference install accounting of the
performance model already charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig
from .perfmodel import NetworkEstimate, estimate_network
from .resnet import LayerKind, LayerSpec


@dataclass(frozen=True)
class TransformerConfig:
    """A decoder stack in the small-LLM class."""

    d_model: int = 1024
    n_heads: int = 16
    d_ff: int = 4096
    seq_len: int = 256
    n_layers: int = 12
    vocab: int = 32_000

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads

    def validate(self) -> None:
        if self.d_model % self.n_heads:
            raise ValueError("d_model must divide evenly into heads")


def _seq_spec(
    name: str,
    kind: LayerKind,
    k: int,
    m: int,
    n: int,
) -> LayerSpec:
    """A sequence-shaped layer: K x M matmul over N positions."""
    return LayerSpec(
        name, kind, in_channels=k, out_channels=m, kernel=1, stride=1,
        in_size=1, out_size=1, n_override=n,
    )


def transformer_layers(config: TransformerConfig) -> list[LayerSpec]:
    """All layers of a decoder stack, batch-1 full-sequence prefill."""
    config.validate()
    d, s = config.d_model, config.seq_len
    h, dh = config.n_heads, config.d_head
    layers: list[LayerSpec] = []
    for i in range(config.n_layers):
        p = f"layer{i}"
        layers += [
            _seq_spec(f"{p}.ln1", LayerKind.STREAM_EW, d, d, s),
            _seq_spec(f"{p}.qkv", LayerKind.FC, d, 3 * d, s),
            # per-head scores: (s, dh) @ (dh, s), h heads -> N = s*h
            _seq_spec(f"{p}.scores", LayerKind.FC, dh, s, s * h),
            _seq_spec(f"{p}.softmax", LayerKind.STREAM_EW, s, 1, s * h),
            # context: (s, s) @ (s, dh) per head
            _seq_spec(f"{p}.context", LayerKind.FC, s, dh, s * h),
            _seq_spec(f"{p}.out_proj", LayerKind.FC, d, d, s),
            _seq_spec(f"{p}.add1", LayerKind.ADD, d, d, s),
            _seq_spec(f"{p}.ln2", LayerKind.STREAM_EW, d, d, s),
            _seq_spec(f"{p}.ffn_up", LayerKind.FC, d, config.d_ff, s),
            _seq_spec(f"{p}.ffn_down", LayerKind.FC, config.d_ff, d, s),
            _seq_spec(f"{p}.add2", LayerKind.ADD, d, d, s),
        ]
    layers.append(
        _seq_spec("lm_head", LayerKind.FC, d, config.vocab, 1)
    )
    return layers


def transformer_macs(config: TransformerConfig) -> int:
    """Closed-form MAC count, used to validate the layer list."""
    d, s = config.d_model, config.seq_len
    per_layer = (
        d * 3 * d * s  # qkv
        + config.d_head * s * s * config.n_heads  # scores
        + s * config.d_head * s * config.n_heads  # context
        + d * d * s  # out proj
        + d * config.d_ff * s * 2  # mlp
    )
    return per_layer * config.n_layers + d * config.vocab


@dataclass
class TransformerEstimate:
    """TSP deployment figures for a decoder stack."""

    network: NetworkEstimate
    config: TransformerConfig

    @property
    def prefill_latency_us(self) -> float:
        return self.network.latency_us

    @property
    def tokens_per_second(self) -> float:
        """Prefill rate: the whole sequence per pass."""
        return self.config.seq_len / (self.network.latency_us / 1e6)

    @property
    def sequences_per_second(self) -> float:
        return self.network.ips


def estimate_transformer(
    config: TransformerConfig, chip: ArchConfig, optimized: bool = True
) -> TransformerEstimate:
    """Map and time a transformer prefill on the TSP."""
    network = estimate_network(
        transformer_layers(config), chip, optimized=optimized
    )
    return TransformerEstimate(network=network, config=config)


def decode_layers(
    config: TransformerConfig, context_len: int
) -> list[LayerSpec]:
    """Single-token decoding against a KV cache of ``context_len``.

    Every matmul has N = 1 (one new token): the MXM spends its time
    *loading* weights rather than streaming activations — the memory-bound
    regime of the paper's Figure 9 roofline, where "the TSP becomes memory
    bandwidth bound loading weights into the MXM array".
    """
    config.validate()
    d = config.d_model
    h, dh = config.n_heads, config.d_head
    layers: list[LayerSpec] = []
    for i in range(config.n_layers):
        p = f"decode{i}"
        layers += [
            _seq_spec(f"{p}.ln1", LayerKind.STREAM_EW, d, d, 1),
            _seq_spec(f"{p}.qkv", LayerKind.FC, d, 3 * d, 1),
            # one query against the cached keys: (1, dh) @ (dh, ctx)
            _seq_spec(f"{p}.scores", LayerKind.FC, dh, context_len, h),
            _seq_spec(
                f"{p}.softmax", LayerKind.STREAM_EW, context_len, 1, h
            ),
            # context: (1, ctx) @ (ctx, dh) per head
            _seq_spec(f"{p}.context", LayerKind.FC, context_len, dh, h),
            _seq_spec(f"{p}.out_proj", LayerKind.FC, d, d, 1),
            _seq_spec(f"{p}.ffn_up", LayerKind.FC, d, config.d_ff, 1),
            _seq_spec(f"{p}.ffn_down", LayerKind.FC, config.d_ff, d, 1),
        ]
    layers.append(_seq_spec("lm_head", LayerKind.FC, d, config.vocab, 1))
    return layers


@dataclass
class DecodeEstimate:
    """Single-token generation figures."""

    network: NetworkEstimate
    config: TransformerConfig
    context_len: int

    @property
    def token_latency_us(self) -> float:
        return self.network.latency_us

    @property
    def tokens_per_second(self) -> float:
        return 1e6 / self.token_latency_us

    def sustained_teraops(self) -> float:
        ops = 2 * sum(l.macs for l in self.network.layers)
        return ops / (self.token_latency_us / 1e6) / 1e12


def estimate_decode(
    config: TransformerConfig,
    chip: ArchConfig,
    context_len: int = 256,
    optimized: bool = True,
) -> DecodeEstimate:
    """Map and time single-token decoding on the TSP."""
    network = estimate_network(
        decode_layers(config, context_len), chip, optimized=optimized
    )
    return DecodeEstimate(
        network=network, config=config, context_len=context_len
    )
