"""Multi-chip pipeline-parallel scale-out (an extension of Section II's
C2C design).

The paper provisions 3.84 Tb/s of deterministic chip-to-chip bandwidth "to
support high-radix interconnection networks of TSPs for large-scale
systems" but publishes no multi-chip results; this module models the
natural deployment — pipeline parallelism, one contiguous group of layers
per chip, activations forwarded over C2C — with the same deterministic
cycle accounting as the single-chip model.  Because every stage is
deterministic, pipeline throughput is exactly the slowest stage's rate and
latency is exactly the sum of stages plus link hops: no queueing model is
needed, which is itself the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig
from ..sim.c2c import DEFAULT_LINK_LATENCY
from .perfmodel import LayerEstimate, estimate_network
from .resnet import LayerSpec


@dataclass
class StagePlan:
    """One chip's share of the pipeline."""

    chip: int
    layer_names: list[str]
    cycles: int
    egress_vectors: int  # activation vectors forwarded to the next chip


@dataclass
class ScaleOutEstimate:
    """Pipeline-parallel deployment across N chips."""

    stages: list[StagePlan]
    config: ArchConfig
    link_latency: int

    @property
    def n_chips(self) -> int:
        return len(self.stages)

    @property
    def bottleneck_cycles(self) -> int:
        return max(stage.cycles for stage in self.stages)

    @property
    def transfer_cycles(self) -> int:
        """Inter-stage forwarding: one vector per cycle per link hop."""
        return sum(
            stage.egress_vectors + self.link_latency
            for stage in self.stages[:-1]
        )

    @property
    def throughput_ips(self) -> float:
        """Pipelined: one image per bottleneck-stage interval."""
        return self.config.clock_ghz * 1e9 / self.bottleneck_cycles

    @property
    def latency_us(self) -> float:
        """End-to-end: all stages plus link transfers."""
        total = sum(s.cycles for s in self.stages) + self.transfer_cycles
        return total / (self.config.clock_ghz * 1e3)

    def speedup_vs(self, single_chip_ips: float) -> float:
        return self.throughput_ips / single_chip_ips

    def efficiency(self, single_chip_ips: float) -> float:
        return self.speedup_vs(single_chip_ips) / self.n_chips


def _partition_balanced(
    layers: list[LayerEstimate], n_chips: int
) -> list[list[LayerEstimate]]:
    """Greedy contiguous partition targeting equal per-stage cycles."""
    total = sum(layer.cycles for layer in layers)
    target = total / n_chips
    stages: list[list[LayerEstimate]] = []
    current: list[LayerEstimate] = []
    acc = 0
    remaining_chips = n_chips
    for index, layer in enumerate(layers):
        current.append(layer)
        acc += layer.cycles
        remaining = len(layers) - index - 1
        if (
            acc >= target
            and remaining_chips > 1
            and remaining >= remaining_chips - 1
        ):
            stages.append(current)
            current = []
            acc = 0
            remaining_chips -= 1
    if current:
        stages.append(current)
    while len(stages) < n_chips:
        stages.append([])  # more chips than useful stages
    return stages


def scale_out(
    specs: list[LayerSpec],
    config: ArchConfig,
    n_chips: int,
    link_latency: int = DEFAULT_LINK_LATENCY,
    optimized: bool = True,
) -> ScaleOutEstimate:
    """Plan a pipeline-parallel deployment of a network over N chips."""
    if n_chips < 1:
        raise ValueError("need at least one chip")
    network = estimate_network(specs, config, optimized=optimized)
    spec_by_name = {spec.name: spec for spec in specs}
    partitions = _partition_balanced(network.layers, n_chips)

    stages: list[StagePlan] = []
    for chip, part in enumerate(partitions):
        if part:
            last = part[-1]
            out_elems = spec_by_name[last.name].output_elements
            egress = -(-out_elems // config.n_lanes)
        else:
            egress = 0
        stages.append(
            StagePlan(
                chip=chip,
                layer_names=[l.name for l in part],
                cycles=sum(l.cycles for l in part),
                egress_vectors=egress if chip < n_chips - 1 else 0,
            )
        )
    return ScaleOutEstimate(
        stages=stages, config=config, link_latency=link_latency
    )
