"""Multi-chip pipeline-parallel scale-out (an extension of Section II's
C2C design).

The paper provisions 3.84 Tb/s of deterministic chip-to-chip bandwidth "to
support high-radix interconnection networks of TSPs for large-scale
systems" but publishes no multi-chip results; this module covers the
natural deployment — pipeline parallelism, one contiguous group of layers
per chip, activations forwarded over C2C — twice over:

* **Analytic** (:func:`scale_out`): the closed-form deterministic cycle
  model over :mod:`repro.nn.perfmodel` layer estimates.  Because every
  stage is deterministic, pipeline throughput is exactly the slowest
  stage's rate and latency is exactly the sum of stages plus link hops:
  no queueing model is needed, which is itself the paper's point.
* **Executed** (:func:`execute_pipeline`): the same partition, actually
  run.  Each stage's matmul programs execute on its own chip of a
  :meth:`repro.sim.MultiChipSystem.ring`, and stage boundaries ship the
  int8 activations through compiler-scheduled C2C ``Send``/``Receive``
  programs (:func:`repro.compiler.build_forward_transfer`) — the
  returned per-stage cycles are measured, not modeled, and the logits
  are bit-identical to the single-chip oracle (quantize-before-ship
  commutes with the consumer's layout glue; see
  :meth:`~repro.nn.tsp_inference.TspCnnRunner.quantize_boundary`).

``python -m repro.nn.scaleout`` runs a self-contained executed-vs-oracle
demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.geometry import Hemisphere
from ..compiler.partition import (
    PartitionPlan,
    build_forward_transfer,
    pack_payload,
    partition_contiguous,
    unpack_payload,
)
from ..config import ArchConfig
from ..errors import ConfigError
from ..obs import rtrace
from ..sim.c2c import DEFAULT_LINK_LATENCY
from .perfmodel import LayerEstimate, estimate_network
from .resnet import LayerSpec
from .tsp_inference import ChunkRunStats, CompiledLayer, TspCnnRunner


@dataclass
class StagePlan:
    """One chip's share of the pipeline."""

    chip: int
    layer_names: list[str]
    cycles: int
    egress_vectors: int  # activation vectors forwarded to the next chip


@dataclass
class ScaleOutEstimate:
    """Pipeline-parallel deployment across N chips."""

    stages: list[StagePlan]
    config: ArchConfig
    link_latency: int

    @property
    def n_chips(self) -> int:
        return len(self.stages)

    @property
    def bottleneck_cycles(self) -> int:
        return max(stage.cycles for stage in self.stages)

    @property
    def transfer_cycles(self) -> int:
        """Inter-stage forwarding: one vector per cycle per link hop.

        Only hops between *non-empty* consecutive stages are billed: an
        empty stage computes nothing, receives nothing, and forwards
        nothing, so a partition padded with idle chips (as the planner
        produced before it learned to raise) must not inflate latency
        with phantom link traversals.
        """
        active = [stage for stage in self.stages if stage.layer_names]
        return sum(
            stage.egress_vectors + self.link_latency
            for stage in active[:-1]
        )

    @property
    def throughput_ips(self) -> float:
        """Pipelined: one image per bottleneck-stage interval."""
        return self.config.clock_ghz * 1e9 / self.bottleneck_cycles

    @property
    def latency_us(self) -> float:
        """End-to-end: all stages plus link transfers."""
        total = sum(s.cycles for s in self.stages) + self.transfer_cycles
        return total / (self.config.clock_ghz * 1e3)

    def speedup_vs(self, single_chip_ips: float) -> float:
        return self.throughput_ips / single_chip_ips

    def efficiency(self, single_chip_ips: float) -> float:
        return self.speedup_vs(single_chip_ips) / self.n_chips


def _partition_balanced(
    layers: list[LayerEstimate], n_chips: int
) -> list[list[LayerEstimate]]:
    """Greedy contiguous partition targeting equal per-stage cycles.

    Delegates to :func:`repro.compiler.partition.partition_contiguous`:
    every chip gets at least one layer, and asking for more chips than
    layers raises :class:`~repro.errors.ConfigError` instead of silently
    emitting empty stages.
    """
    groups = partition_contiguous(
        [layer.cycles for layer in layers], n_chips
    )
    return [[layers[i] for i in group] for group in groups]


def scale_out(
    specs: list[LayerSpec],
    config: ArchConfig,
    n_chips: int,
    link_latency: int = DEFAULT_LINK_LATENCY,
    optimized: bool = True,
) -> ScaleOutEstimate:
    """Plan a pipeline-parallel deployment of a network over N chips."""
    if n_chips < 1:
        raise ValueError("need at least one chip")
    network = estimate_network(specs, config, optimized=optimized)
    spec_by_name = {spec.name: spec for spec in specs}
    partitions = _partition_balanced(network.layers, n_chips)

    stages: list[StagePlan] = []
    for chip, part in enumerate(partitions):
        last = part[-1]
        out_elems = spec_by_name[last.name].output_elements
        egress = -(-out_elems // config.n_lanes)
        stages.append(
            StagePlan(
                chip=chip,
                layer_names=[l.name for l in part],
                cycles=sum(l.cycles for l in part),
                # the last stage feeds the host, not another chip
                egress_vectors=egress if chip < n_chips - 1 else 0,
            )
        )
    return ScaleOutEstimate(
        stages=stages, config=config, link_latency=link_latency
    )


# ----------------------------------------------------------------------
# Executed pipeline parallelism


def _matrix_cost(layer: CompiledLayer, lanes: int) -> float:
    """Per-input cycle proxy: streamed rows x K-tiles + weight install."""
    k = layer.weight_q.shape[0]
    k_tiles = -(-k // lanes)
    return float(layer.rows_per_input * k_tiles + k)


def plan_runner_partition(
    runner: TspCnnRunner,
    n_chips: int,
    link_latency: int = DEFAULT_LINK_LATENCY,
) -> PartitionPlan:
    """Partition a lowered runner's matrix layers over ``n_chips``.

    Stage boundaries fall immediately before a matrix layer; the host
    glue between two matrix layers (pooling, flatten, dequant+ReLU)
    belongs to the *producer's* stage, so what crosses the C2C boundary
    is always the compact activation tensor, quantized into the
    consumer's int8 input domain.
    """
    matrices = [
        layer for layer in runner.layers
        if isinstance(layer, CompiledLayer)
    ]
    return PartitionPlan.plan(
        [layer.name for layer in matrices],
        [_matrix_cost(layer, runner.config.n_lanes) for layer in matrices],
        n_chips,
        runner.config,
        link_latency,
    )


def _stage_segments(
    runner: TspCnnRunner, plan: PartitionPlan
) -> list[tuple[int, int]]:
    """Map the plan's matrix-layer stages to ``runner.layers`` ranges."""
    matrix_positions = [
        i for i, layer in enumerate(runner.layers)
        if isinstance(layer, CompiledLayer)
    ]
    starts = [
        0 if index == 0 else matrix_positions[stage.items[0]]
        for index, stage in enumerate(plan.stages)
    ]
    bounds = starts + [len(runner.layers)]
    return list(zip(bounds[:-1], bounds[1:]))


@dataclass
class ExecutedStage:
    """One chip's measured share of an executed pipeline run."""

    chip: int
    layer_names: list[str]
    #: executed chip cycles of this stage's matmul programs (whole batch)
    cycles: int
    #: C2C payload vectors actually shipped to the next chip
    egress_vectors: int
    #: measured lockstep cycles of the forwarding runs out of this stage
    transfer_cycles: int


@dataclass
class ExecutedScaleOut:
    """Executed pipeline deployment: measured cycles, not modeled ones.

    The executed counterpart of :class:`ScaleOutEstimate` — per-stage
    ``cycles`` come from :class:`~repro.sim.chip.RunResult`, transfer
    cycles from the lockstep C2C runs.  All cycle figures cover a batch
    of ``n_inputs`` inputs; the throughput/latency properties normalize
    per input so the two models are directly comparable.
    """

    stages: list[ExecutedStage]
    config: ArchConfig
    link_latency: int
    n_inputs: int

    @property
    def n_chips(self) -> int:
        return len(self.stages)

    @property
    def bottleneck_cycles(self) -> int:
        """Slowest stage's executed cycles, per input."""
        return max(
            -(-stage.cycles // self.n_inputs) for stage in self.stages
        )

    @property
    def transfer_cycles(self) -> int:
        """Measured C2C forwarding cycles across the batch."""
        return sum(stage.transfer_cycles for stage in self.stages)

    @property
    def throughput_ips(self) -> float:
        """Pipelined: one input per bottleneck-stage interval."""
        return self.config.clock_ghz * 1e9 / self.bottleneck_cycles

    @property
    def latency_us(self) -> float:
        """End-to-end per input: all stages plus measured transfers."""
        total = sum(s.cycles for s in self.stages) + self.transfer_cycles
        return (total / self.n_inputs) / (self.config.clock_ghz * 1e3)

    def speedup_vs(self, single_chip_ips: float) -> float:
        return self.throughput_ips / single_chip_ips

    def efficiency(self, single_chip_ips: float) -> float:
        return self.speedup_vs(single_chip_ips) / self.n_chips


@dataclass
class PipelineRunResult:
    """Everything one executed pipeline inference produced."""

    logits: np.ndarray
    plan: PartitionPlan | None
    executed: ExecutedScaleOut
    stage_stats: list[ChunkRunStats] = field(default_factory=list)


def _pick_stage_slice(config: ArchConfig, stage_slice: int, blacklist):
    """First staging slice index healthy in *both* hemispheres.

    The pipeline stages activations in WEST MEM on direct hops, but a
    re-routed (westward) ring hop stages in EAST — so under a blacklist
    the staging index must be healthy on both sides, on every chip (the
    blacklist is chip-agnostic, like the compiler's).
    """
    if blacklist is None or not blacklist.mem_slices:
        return stage_slice
    n = config.mem_slices_per_hemisphere
    for index in range(stage_slice, n):
        if (Hemisphere.WEST, index) not in blacklist.mem_slices and (
            Hemisphere.EAST, index
        ) not in blacklist.mem_slices:
            return index
    raise ConfigError(
        "no healthy MEM slice left to stage pipeline transfers in"
    )


def _transfer_for(
    system, src, n_words, *, fingerprint, cache, stage_slice,
    base_address, interval,
):
    """Build (or fetch) the timed transfer programs for one hop shape.

    The key folds in the partition fingerprint and the link's
    ``arrival_latency`` — a different split, a different latency budget,
    or an attached error model (more retry slack) must never replay
    another partition's timed programs.
    """
    link = system.chips[src].c2c_unit(Hemisphere.EAST).links[0]

    def factory():
        return build_forward_transfer(
            system, src, n_words,
            stage_slice=stage_slice, base_address=base_address,
            interval=interval,
        )

    if cache is None or not hasattr(cache, "get_or_build"):
        return factory()
    key = (
        f"xfer:{fingerprint}:{src}:{n_words}:{link.arrival_latency}:"
        f"{interval}:{stage_slice}:{base_address}"
    )
    return cache.get_or_build(key, factory)


def _ring_transfer_for(
    system, route, n_words, *, fingerprint, cache, stage_slice,
    base_address, interval,
):
    """Build (or fetch) the timed store-and-forward plan for one route.

    The plan's dispatch schedule is a pure function of (route, word
    count, staging layout, per-cable arrival latencies) — the key folds
    all of them in, so replacing a cable's error model (different retry
    slack) recompiles rather than replaying a stale schedule.  The
    payload itself is *not* part of the plan: the caller re-loads it
    into the route head's staging slice before every run.
    """
    from ..resil.degrade import build_ring_transfer

    lanes = system.chips[0].config.n_lanes

    def factory():
        return build_ring_transfer(
            system, route,
            np.zeros((n_words, lanes), dtype=np.uint8),
            stage_slice=stage_slice, base_address=base_address,
            interval=interval,
        )

    if cache is None or not hasattr(cache, "get_or_build"):
        return factory()
    n_chips = len(system.chips)
    eastward = route[1] == (route[0] + 1) % n_chips
    out_hemisphere = Hemisphere.EAST if eastward else Hemisphere.WEST
    latencies = "/".join(
        str(system.chips[a].c2c_unit(out_hemisphere).links[0].arrival_latency)
        for a in route[:-1]
    )
    key = (
        f"ringxfer:{fingerprint}:{'-'.join(map(str, route))}:{n_words}:"
        f"{latencies}:{interval}:{stage_slice}:{base_address}"
    )
    return cache.get_or_build(key, factory)


def execute_pipeline(
    runner: TspCnnRunner,
    x: np.ndarray,
    n_chips: int,
    *,
    system=None,
    cache=None,
    stats: ChunkRunStats | None = None,
    plan: PartitionPlan | None = None,
    fast_forward: bool = True,
    interval: int = 1,
    stage_slice: int = 0,
    base_address: int = 0,
    max_cycles: int = 2_000_000,
    blacklist=None,
) -> PipelineRunResult:
    """Run one batch through an executed N-chip pipeline.

    Stage ``i``'s layers execute on ``system.chips[i]``; at each stage
    boundary the producer quantizes its compact activation tensor into
    the consumer's int8 domain, packs it into lane-wide byte vectors,
    stages it in its WEST MEM slice, and the whole system runs the
    compiler-scheduled ``Read -> Send -> Receive`` transfer in lockstep —
    the consumer then computes on exactly the bytes that landed in *its*
    MEM, so the transport is honest and the logits stay bit-identical to
    the single-chip oracle (dense or fast-forward).  Payloads larger
    than the staging slice are chunked.

    ``system`` defaults to a fresh :meth:`MultiChipSystem.ring`; pass a
    pooled one to reuse chips across batches (the serve path).  ``cache``
    is a :class:`repro.serve.ProgramCache`: matmul chunk programs share
    the single-chip cache entries, and transfer programs are cached under
    keys that incorporate the partition fingerprint.

    ``blacklist`` (a :class:`repro.resil.Blacklist`) serves degraded:
    matmul programs recompile around dead MEM slices / MXM planes (via
    the blacklist-aware cache key), staging moves off blacklisted
    slices, and a dead ring cable re-routes the affected hop the long
    way around through :func:`repro.resil.plan_ring_route` — all
    bit-identical to the healthy run, because quantize-before-ship and
    store-and-forward never transform the payload.
    """
    from ..resil.degrade import plan_ring_route
    from ..sim.chip import TspChip
    from ..sim.multichip import MultiChipSystem

    config = runner.config
    if n_chips == 1:
        chip = system.chips[0] if system is not None else TspChip(config)
        current = x
        cycles = 0
        names: list[str] = []
        for layer in runner.layers:
            current, layer_cycles = runner.apply_layer(
                layer, current, chip=chip, cache=cache, stats=stats,
                fast_forward=fast_forward, blacklist=blacklist,
            )
            cycles += layer_cycles
            if isinstance(layer, CompiledLayer):
                names.append(layer.name)
        executed = ExecutedScaleOut(
            stages=[ExecutedStage(0, names, cycles, 0, 0)],
            config=config,
            link_latency=DEFAULT_LINK_LATENCY,
            n_inputs=x.shape[0],
        )
        return PipelineRunResult(
            logits=current, plan=plan, executed=executed,
            stage_stats=[stats] if stats is not None else [],
        )

    if plan is None:
        plan = plan_runner_partition(runner, n_chips)
    if plan.n_chips != n_chips:
        raise ConfigError(
            f"partition plan covers {plan.n_chips} chips, asked to "
            f"execute on {n_chips}"
        )
    if system is None:
        system = MultiChipSystem.ring(
            config, n_chips, latency=plan.link_latency
        )
    if len(system.chips) < n_chips:
        raise ConfigError(
            f"system has {len(system.chips)} chips, plan needs {n_chips}"
        )

    segments = _stage_segments(runner, plan)
    lanes = config.n_lanes
    stage_slice = _pick_stage_slice(config, stage_slice, blacklist)
    dead_cables = (
        frozenset(blacklist.ring_cables)
        if blacklist is not None and blacklist.ring_cables
        else frozenset()
    )
    ring_n = len(system.chips)
    words_cap = (1 << config.mem_addr_bits) - base_address
    stage_stats = [ChunkRunStats() for _ in range(n_chips)]
    stages: list[ExecutedStage] = []
    current = x
    batch_ctx = rtrace.current()
    for index, (start, stop) in enumerate(segments):
        chip = system.chips[index]
        # open a per-stage span so this stage's execute spans (recorded
        # by the chunk executor via the ambient context) and its outbound
        # transfer spans nest under it rather than directly under the batch
        stage_ctx = token = None
        stage_start_us = 0.0
        if batch_ctx is not None:
            tracer = batch_ctx.tracer
            stage_ctx = batch_ctx.child(tracer.next_id())
            token = rtrace.push(stage_ctx)
            stage_start_us = tracer.now_us()
        cycles = 0
        try:
            for position in range(start, stop):
                layer = runner.layers[position]
                current, layer_cycles = runner.apply_layer(
                    layer,
                    current,
                    chip=chip,
                    cache=cache,
                    stats=stage_stats[index],
                    prequantized=(index > 0 and position == start),
                    fast_forward=fast_forward,
                    blacklist=blacklist,
                )
                cycles += layer_cycles
            egress_vectors = 0
            transfer_cycles = 0
            if index < n_chips - 1:
                consumer = runner.layers[segments[index + 1][0]]
                quantized = runner.quantize_boundary(consumer, current)
                words = pack_payload(quantized, lanes)
                egress_vectors = words.shape[0]
                # a dead ring cable re-routes this hop the long way
                # around; the direct two-chip route keeps the fast path
                route = (
                    plan_ring_route(ring_n, index, index + 1, dead_cables)
                    if dead_cables else [index, index + 1]
                )
                landed = []
                for offset in range(0, words.shape[0], words_cap):
                    chunk = words[offset : offset + words_cap]
                    hop_start_us = (
                        stage_ctx.tracer.now_us()
                        if stage_ctx is not None else 0.0
                    )
                    if len(route) == 2:
                        transfer = _transfer_for(
                            system, index, chunk.shape[0],
                            fingerprint=plan.fingerprint, cache=cache,
                            stage_slice=stage_slice,
                            base_address=base_address,
                            interval=interval,
                        )
                        chip.load_memory(
                            Hemisphere.WEST, stage_slice, base_address,
                            chunk,
                        )
                        runs = system.run(
                            transfer.programs, max_cycles=max_cycles,
                            fast_forward=fast_forward,
                        )
                        hop_cycles = runs[0].cycles
                        landed_words = system.chips[index + 1].read_memory(
                            Hemisphere.WEST, stage_slice, base_address,
                            chunk.shape[0],
                        )
                    else:
                        ring_plan = _ring_transfer_for(
                            system, route, chunk.shape[0],
                            fingerprint=plan.fingerprint, cache=cache,
                            stage_slice=stage_slice,
                            base_address=base_address,
                            interval=max(interval, 4),
                        )
                        # the plan is payload-free: stage this chunk at
                        # the route head before every lockstep run
                        system.chips[route[0]].load_memory(
                            ring_plan.dst_hemisphere, stage_slice,
                            base_address, chunk,
                        )
                        runs = system.run(
                            ring_plan.programs, max_cycles=max_cycles,
                            fast_forward=fast_forward,
                        )
                        hop_cycles = max(r.cycles for r in runs)
                        landed_words = system.chips[route[-1]].read_memory(
                            ring_plan.dst_hemisphere, stage_slice,
                            base_address, chunk.shape[0],
                        )
                    transfer_cycles += hop_cycles
                    if stage_ctx is not None:
                        tracer = stage_ctx.tracer
                        tracer.record_under(
                            stage_ctx, "transfer",
                            hop_start_us, tracer.now_us(),
                            chip=getattr(chip, "chip_id", None),
                            cycles=hop_cycles,
                            clock_ghz=config.clock_ghz,
                            chip_events=(
                                tuple(runs[index].trace)
                                if tracer.chip_events else ()
                            ),
                            args={
                                "hop": f"{index}->{index + 1}",
                                "route": list(route),
                                "vectors": int(chunk.shape[0]),
                            },
                        )
                    landed.append(
                        np.asarray(landed_words, dtype=np.uint8)
                    )
                received = np.vstack(landed)
                current = unpack_payload(received, quantized.shape, np.int8)
        finally:
            if stage_ctx is not None:
                rtrace.pop(token)
        if batch_ctx is not None:
            tracer = batch_ctx.tracer
            tracer.record_under(
                batch_ctx, "stage", stage_start_us, tracer.now_us(),
                span_id=stage_ctx.span_id,
                chip=getattr(chip, "chip_id", None),
                cycles=cycles,
                clock_ghz=config.clock_ghz,
                args={
                    "stage": index,
                    "layers": list(plan.stages[index].names),
                },
            )
        stages.append(
            ExecutedStage(
                chip=index,
                layer_names=list(plan.stages[index].names),
                cycles=cycles,
                egress_vectors=egress_vectors,
                transfer_cycles=transfer_cycles,
            )
        )
    if stats is not None:
        for per_stage in stage_stats:
            stats.merge(per_stage)
        stats.cycles += sum(stage.transfer_cycles for stage in stages)
    executed = ExecutedScaleOut(
        stages=stages,
        config=config,
        link_latency=plan.link_latency,
        n_inputs=x.shape[0],
    )
    return PipelineRunResult(
        logits=current, plan=plan, executed=executed,
        stage_stats=stage_stats,
    )


# ----------------------------------------------------------------------
# `python -m repro.nn.scaleout` — executed-vs-oracle demo


def main(argv: list[str] | None = None) -> int:
    """Partition a small CNN over a ring and check it against the oracle."""
    import argparse

    from ..config import small_test_chip
    from .dataset import make_shapes
    from .layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
    from .model import Sequential
    from .training import make_small_cnn, train

    parser = argparse.ArgumentParser(
        description="executed multi-chip pipeline demo"
    )
    parser.add_argument("--chips", type=int, default=2)
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    config = small_test_chip()
    data = make_shapes(
        n_train=96, n_test=16, image_size=8, n_classes=3, seed=args.seed
    )
    if args.chips <= 3:
        model = make_small_cnn(3, channels=4, image_size=8, seed=args.seed)
    else:
        # four matrix layers, enough pipeline depth for a 4-chip ring
        rng = np.random.default_rng(args.seed)
        model = Sequential([
            Conv2D(1, 4, kernel=3, rng=rng),
            ReLU(),
            Conv2D(4, 4, kernel=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(4, 8, kernel=3, rng=rng),
            ReLU(),
            Flatten(),
            Dense(8 * 4 * 4, 3, rng=rng),
        ])
    train(model, data, epochs=2, lr=0.1, seed=args.seed)
    runner = TspCnnRunner(
        model, config, data.x_train[:32], max_vectors_per_program=32
    )
    x = data.x_test[: args.batch]

    oracle = runner.forward(x)
    result = execute_pipeline(runner, x, args.chips)
    executed = result.executed
    exact = bool(np.array_equal(oracle.logits, result.logits))

    print(f"pipeline over {args.chips} chips, batch {args.batch}:")
    for stage in executed.stages:
        print(
            f"  chip {stage.chip}: {'+'.join(stage.layer_names):<16} "
            f"{stage.cycles:>8} cycles"
            + (
                f"   -> {stage.egress_vectors} vectors "
                f"({stage.transfer_cycles} transfer cycles)"
                if stage.chip < executed.n_chips - 1
                else ""
            )
        )
    print(
        f"  bottleneck {executed.bottleneck_cycles} cycles/input vs "
        f"single-chip {-(-oracle.total_cycles // x.shape[0])}"
    )
    print(f"  bit-exact vs single-chip oracle: {exact}")
    return 0 if exact else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
