"""The conformance layer: differential oracle, invariants, ISA coverage.

The paper's premise is that the compiler "precisely tracks the chip's
architectural state" and the hardware executes bit-exactly what was
scheduled.  This package makes that claim checkable for the reproduction:

* :mod:`repro.verify.interpreter` — a pure-numpy graph interpreter that
  computes what a compiled program *should* produce, without any notion of
  cycles, streams, or placement;
* :mod:`repro.verify.oracle` — runs a program on both the cycle simulator
  and the interpreter, compares bit-for-bit, and renders a minimized repro
  on divergence;
* :mod:`repro.verify.invariants` — runtime checkers pluggable into
  :class:`~repro.sim.chip.TspChip` that watch stream drives, SRAM bank
  accesses, and instruction dispatch against the scheduler's predictions
  (Equation 4/5);
* :mod:`repro.verify.lockstep` — executes one compiled program under both
  the fast-forward and cycle-by-cycle simulator cores and asserts
  bit-identical memory, outputs, traces, cycle counts, and checker event
  streams — the equivalence proof-obligation of the skipping core;
* :mod:`repro.verify.coverage` — tracks which opcodes, dtypes, and slice
  families a run exercises and enforces a coverage threshold;
* :mod:`repro.verify.suite` — the conformance sweep exercising every
  instruction class, runnable standalone via ``python -m repro.verify``.
"""

from .coverage import COVERAGE_CLASSES, CoverageChecker, CoverageTracker
from .interpreter import GraphInterpreter, interpret
from .invariants import (
    BankDisciplineChecker,
    InvariantChecker,
    StreamCollisionChecker,
    TimingContractChecker,
    Violation,
)
from .lockstep import (
    LockstepResult,
    RecordingChecker,
    assert_lockstep,
    assert_trace_lockstep,
    run_lockstep,
)
from .oracle import (
    DifferentialResult,
    DivergenceReport,
    assert_conformance,
    run_differential,
)
from .suite import ConformanceSummary, run_conformance

__all__ = [
    "BankDisciplineChecker",
    "COVERAGE_CLASSES",
    "ConformanceSummary",
    "CoverageChecker",
    "CoverageTracker",
    "DifferentialResult",
    "DivergenceReport",
    "GraphInterpreter",
    "InvariantChecker",
    "LockstepResult",
    "RecordingChecker",
    "StreamCollisionChecker",
    "TimingContractChecker",
    "Violation",
    "assert_conformance",
    "assert_lockstep",
    "assert_trace_lockstep",
    "interpret",
    "run_conformance",
    "run_differential",
    "run_lockstep",
]
