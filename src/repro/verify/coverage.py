"""ISA coverage tracking: which opcodes, dtypes, and slices ran.

The ISA registry (:mod:`repro.isa.base`) is the source of truth for what
*can* be dispatched; this module records what a test run *did* dispatch and
fails a threshold check per instruction class.  Classes follow the paper's
functional-slice families — MEM, VXM, MXM, SXM, C2C — plus ``ICU`` for the
slice-agnostic control instructions (NOP, Ifetch, Sync, Notify, Config,
Repeat).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.streams import DType
from ..errors import CoverageError
from ..isa.base import INSTRUCTION_REGISTRY, Instruction
from ..isa.program import Program
from .invariants import InvariantChecker

COVERAGE_CLASSES = ("MEM", "VXM", "MXM", "SXM", "ICU", "C2C")


def instruction_class(cls: type[Instruction]) -> str:
    """Coverage class of an instruction type."""
    kinds = cls.slice_kinds
    if not kinds or len(kinds) > 1:
        return "ICU"  # slice-agnostic control instructions
    return next(iter(kinds)).value


def mnemonics_by_class() -> dict[str, list[str]]:
    """Every registered mnemonic, grouped by coverage class."""
    groups: dict[str, list[str]] = {name: [] for name in COVERAGE_CLASSES}
    for mnemonic, cls in INSTRUCTION_REGISTRY.items():
        groups[instruction_class(cls)].append(mnemonic)
    for mnemonics in groups.values():
        mnemonics.sort()
    return groups


@dataclass
class ClassCoverage:
    """Coverage of one instruction class."""

    name: str
    total: list[str]
    exercised: list[str]

    @property
    def missing(self) -> list[str]:
        return sorted(set(self.total) - set(self.exercised))

    @property
    def fraction(self) -> float:
        if not self.total:
            return 1.0
        return len(self.exercised) / len(self.total)


class CoverageChecker(InvariantChecker):
    """Chip-attachable checker feeding dispatches into a tracker."""

    name = "coverage"

    def __init__(self, tracker: "CoverageTracker") -> None:
        super().__init__()
        self.tracker = tracker

    def on_dispatch(
        self, cycle: int, icu: str, instruction: Instruction
    ) -> None:
        self.tracker.record_instruction(instruction)


class CoverageTracker:
    """Accumulates exercised opcodes and dtypes across runs."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.dtypes: set[str] = set()

    # ------------------------------------------------------------------
    def record_instruction(self, instruction: Instruction) -> None:
        mnemonic = instruction.mnemonic
        self.counts[mnemonic] = self.counts.get(mnemonic, 0) + 1
        for value in vars(instruction).values():
            if isinstance(value, DType):
                self.dtypes.add(value.label)

    def record_program(self, program: Program) -> None:
        """Static coverage: every instruction a program would dispatch."""
        for icu in program.icus:
            for instruction in program.queue(icu):
                self.record_instruction(instruction)

    def checker(self) -> CoverageChecker:
        """A chip-attachable checker recording runtime dispatches."""
        return CoverageChecker(self)

    # ------------------------------------------------------------------
    def by_class(self) -> list[ClassCoverage]:
        groups = mnemonics_by_class()
        seen = set(self.counts)
        return [
            ClassCoverage(
                name=name,
                total=mnemonics,
                exercised=sorted(seen & set(mnemonics)),
            )
            for name, mnemonics in groups.items()
        ]

    def overall_fraction(self) -> float:
        total = sum(len(c.total) for c in self.by_class())
        exercised = sum(len(c.exercised) for c in self.by_class())
        return exercised / total if total else 1.0

    def as_dict(self) -> dict:
        return {
            "classes": {
                c.name: {
                    "fraction": c.fraction,
                    "exercised": c.exercised,
                    "missing": c.missing,
                }
                for c in self.by_class()
            },
            "overall": self.overall_fraction(),
            "dtypes": sorted(self.dtypes),
            "dispatch_counts": dict(sorted(self.counts.items())),
        }

    def render(self) -> str:
        lines = [
            f"{'class':<6} {'covered':>8} {'fraction':>9}  missing",
            "-" * 60,
        ]
        for c in self.by_class():
            missing = ", ".join(c.missing) if c.missing else "-"
            lines.append(
                f"{c.name:<6} {len(c.exercised):>3}/{len(c.total):<4} "
                f"{c.fraction:>8.0%}  {missing}"
            )
        lines.append("-" * 60)
        lines.append(
            f"overall {self.overall_fraction():.0%}; dtypes exercised: "
            + (", ".join(sorted(self.dtypes)) or "-")
        )
        return "\n".join(lines)

    def check(self, threshold: float = 0.9) -> None:
        """Raise :class:`CoverageError` if any class is below threshold."""
        failing = [
            c for c in self.by_class() if c.fraction < threshold
        ]
        if failing:
            detail = "; ".join(
                f"{c.name} at {c.fraction:.0%} (missing {', '.join(c.missing)})"
                for c in failing
            )
            raise CoverageError(
                f"ISA coverage below {threshold:.0%}: {detail}"
            )
