"""Lockstep fast-vs-slow comparator for the fast-forward core.

The fast-forward execution core (:meth:`repro.sim.chip.TspChip.run` with
``fast_forward=True``) claims to be *provably equivalent* to the
cycle-by-cycle reference path: skipping a quiescent span changes no
architectural outcome because the TSP's timing is fully deterministic and
compiler-known (Section IV-F).  This module turns that claim into a
checkable property: :func:`run_lockstep` executes the same compiled
program on two fresh chips — one per mode — and compares every observable
surface bit-for-bit:

* output tensors and the full materialized MEM image;
* cycle count, per-run instruction count, and every activity tally
  (including the analytically integrated ``stream_hop_bytes``);
* the dispatch trace;
* the checker event streams (every dispatch, stream drive, and SRAM
  access observed by an attached recorder);
* ECC correction counts;
* the full telemetry snapshot of an attached
  :class:`~repro.obs.TelemetryCollector` — every per-unit counter in
  every sampling window, proving that observability is *exact* under
  fast-forward, not merely the architectural end state.

``assert_lockstep`` raises :class:`~repro.errors.DivergenceError` with a
rendered report on any mismatch, mirroring the differential oracle's
contract.  The compiler fuzz suite routes every generated program through
it, so the corpus continuously re-proves the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.runner import bind_input, load_compiled
from ..compiler.scheduler import CompiledProgram
from ..errors import DivergenceError, SimulationError
from ..obs.counters import TelemetryCollector
from ..sim.chip import RunResult, TspChip
from .invariants import InvariantChecker


class RecordingChecker(InvariantChecker):
    """Records the full observable event stream of one run.

    Attached to both the fast and slow chips so the comparator can assert
    that the two modes presented *identical* streams to the invariant
    layer — not merely identical end states.
    """

    name = "recording"

    def __init__(self) -> None:
        super().__init__()
        self.events: list[tuple] = []
        self.skips: list[tuple[int, int]] = []
        self.final_cycle: int | None = None

    def on_dispatch(self, cycle, icu, instruction) -> None:
        self.events.append(
            ("dispatch", cycle, icu, instruction.mnemonic, str(instruction))
        )

    def on_drive(self, cycle, direction, stream, position) -> None:
        self.events.append(("drive", cycle, direction.value, stream, position))

    def on_mem_access(self, cycle, slice_name, kind, bank, address) -> None:
        self.events.append(("mem", cycle, slice_name, kind, bank, address))

    def on_cycles_skipped(self, first_cycle, n_cycles) -> None:
        # bookkeeping only: skips are a fast-path artifact, not an
        # architectural event, so they are excluded from the comparison
        self.skips.append((first_cycle, n_cycles))

    def finish(self, cycle) -> None:
        self.final_cycle = cycle


@dataclass
class LockstepExecution:
    """One half of a lockstep pair."""

    run: RunResult
    outputs: dict[str, np.ndarray]
    memory: dict[str, bytes]
    recorder: RecordingChecker
    telemetry: dict


@dataclass
class LockstepResult:
    """All executions plus every detected divergence.

    ``replay`` is the third leg of the comparator: the program recorded
    once into a :class:`repro.sim.replay.ReplayPlan` and re-executed as
    fused numpy kernels on a fresh chip.  It is ``None`` when the
    program is outside the replay engine's supported set (``plan`` then
    carries the reason) or when the harness cannot record (raw
    ``Program`` without tensor I/O, ``chip_setup`` fault campaigns).
    """

    slow: LockstepExecution
    fast: LockstepExecution
    replay: LockstepExecution | None = None
    plan: object | None = None
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = [
            "lockstep comparator: fast-forward and cycle-by-cycle paths "
            "disagree"
        ]
        lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


def _execute_mode(
    compiled,
    inputs: dict[str, np.ndarray],
    fast_forward: bool,
    timing,
    max_cycles: int,
    warmup_barrier: bool,
    enable_ecc: bool,
    config=None,
    chip_setup=None,
) -> LockstepExecution:
    from ..compiler.runner import fetch_output

    is_compiled = isinstance(compiled, CompiledProgram)
    if not is_compiled and config is None:
        raise SimulationError(
            "lockstep over a raw Program needs an explicit config"
        )
    chip = TspChip(
        compiled.config if is_compiled else config,
        timing=timing,
        trace=True,
        enable_ecc=enable_ecc,
    )
    recorder = RecordingChecker()
    chip.attach_checker(recorder)
    # small windows so a typical corpus program spans several of them —
    # the per-window comparison then exercises count_span's head/full/tail
    # distribution, not just the grand totals
    chip.attach_telemetry(TelemetryCollector(window_cycles=64))
    if is_compiled:
        load_compiled(chip, compiled)
        for name, spec in compiled.inputs.items():
            if name not in inputs:
                raise SimulationError(f"input {name!r} was not bound")
            bind_input(chip, spec, inputs[name])
    if chip_setup is not None:
        # fault-campaign hook: wire C2C loopbacks, attach link error
        # models, preload raw payloads, arm watchdogs — identically on
        # the fast and slow chips
        chip_setup(chip)
    run = chip.run(
        compiled.program if is_compiled else compiled,
        max_cycles=max_cycles,
        warmup_barrier=warmup_barrier,
        fast_forward=fast_forward,
    )
    outputs = (
        {
            name: fetch_output(chip, spec)
            for name, spec in compiled.outputs.items()
        }
        if is_compiled
        else {}
    )
    return LockstepExecution(
        run=run,
        outputs=outputs,
        memory=chip.memory_image(),
        recorder=recorder,
        telemetry=chip.obs.snapshot(),
    )


def run_lockstep(
    compiled,
    inputs: dict[str, np.ndarray] | None = None,
    timing=None,
    max_cycles: int = 1_000_000,
    warmup_barrier: bool = False,
    enable_ecc: bool = False,
    config=None,
    chip_setup=None,
) -> LockstepResult:
    """Execute ``compiled`` in both modes on fresh chips; compare all state.

    ``compiled`` is normally a :class:`CompiledProgram`; a raw
    :class:`~repro.isa.Program` is also accepted (pass ``config``), in
    which case no memory image or tensor I/O is involved and the final
    MEM comparison covers whatever the program itself materialized.
    ``chip_setup(chip)``, when given, runs on *each* fresh chip just
    before its run — the fault-campaign hook for wiring links, attaching
    :class:`~repro.sim.LinkErrorModel` s, preloading payloads, or arming
    watchdogs, applied identically to both modes.
    """
    inputs = inputs or {}
    slow = _execute_mode(
        compiled, inputs, False, timing, max_cycles, warmup_barrier,
        enable_ecc, config, chip_setup,
    )
    fast = _execute_mode(
        compiled, inputs, True, timing, max_cycles, warmup_barrier,
        enable_ecc, config, chip_setup,
    )
    replay = None
    plan = None
    if chip_setup is None and isinstance(compiled, CompiledProgram):
        replay, plan = _execute_replay(
            compiled, inputs, timing, max_cycles, warmup_barrier, enable_ecc
        )
    result = LockstepResult(slow=slow, fast=fast, replay=replay, plan=plan)
    _compare(result)
    return result


def _execute_replay(
    compiled: CompiledProgram,
    inputs: dict[str, np.ndarray],
    timing,
    max_cycles: int,
    warmup_barrier: bool,
    enable_ecc: bool,
):
    """Record the program on one fresh chip, replay it on another.

    Returns ``(execution, plan)``; ``execution`` is ``None`` when the
    recorder marked the plan unsupported (the reason rides on ``plan``).
    Checkers are deliberately absent from both chips — a chip with
    checkers attached is outside the replay engine's bypass predicate by
    design, so the recording must happen without them.
    """
    from ..compiler.runner import fetch_output
    from ..sim.replay import ScheduleRecorder

    def _fresh_chip() -> TspChip:
        chip = TspChip(
            compiled.config, timing=timing, trace=True, enable_ecc=enable_ecc
        )
        chip.attach_telemetry(TelemetryCollector(window_cycles=64))
        load_compiled(chip, compiled)
        for name, spec in compiled.inputs.items():
            bind_input(chip, spec, inputs[name])
        return chip

    chip = _fresh_chip()
    recorder = ScheduleRecorder(
        chip, compiled, warmup_barrier=warmup_barrier, fast_forward=True
    )
    chip.recorder = recorder
    try:
        run = chip.run(
            compiled.program,
            max_cycles=max_cycles,
            warmup_barrier=warmup_barrier,
            fast_forward=True,
        )
    finally:
        chip.recorder = None
    plan = recorder.finish(run)
    if not plan.ok:
        return None, plan

    chip = _fresh_chip()
    run = plan.replay_into(chip)
    outputs = {
        name: fetch_output(chip, spec)
        for name, spec in compiled.outputs.items()
    }
    return (
        LockstepExecution(
            run=run,
            outputs=outputs,
            memory=chip.memory_image(),
            recorder=RecordingChecker(),
            telemetry=chip.obs.snapshot(),
        ),
        plan,
    )


def assert_lockstep(compiled: CompiledProgram, **kwargs) -> LockstepResult:
    """``run_lockstep`` that raises :class:`DivergenceError` on mismatch."""
    result = run_lockstep(compiled, **kwargs)
    if not result.ok:
        raise DivergenceError(result.render())
    return result


# ----------------------------------------------------------------------
def _compare(result: LockstepResult) -> None:
    slow, fast = result.slow, result.fast
    note = result.mismatches.append

    if slow.run.cycles != fast.run.cycles:
        note(
            f"cycle count: slow={slow.run.cycles} fast={fast.run.cycles}"
        )
    if slow.run.instructions != fast.run.instructions:
        note(
            f"instructions: slow={slow.run.instructions} "
            f"fast={fast.run.instructions}"
        )
    if slow.run.ecc_corrections != fast.run.ecc_corrections:
        note(
            f"ecc corrections: slow={slow.run.ecc_corrections} "
            f"fast={fast.run.ecc_corrections}"
        )
    if slow.run.activity != fast.run.activity:
        note(
            f"activity counts: slow={slow.run.activity} "
            f"fast={fast.run.activity}"
        )

    if slow.run.trace != fast.run.trace:
        for i, (a, b) in enumerate(zip(slow.run.trace, fast.run.trace)):
            if a != b:
                note(f"trace[{i}]: slow={a} fast={b}")
                break
        else:
            note(
                f"trace length: slow={len(slow.run.trace)} "
                f"fast={len(fast.run.trace)}"
            )

    sev, fev = slow.recorder.events, fast.recorder.events
    if sev != fev:
        for i, (a, b) in enumerate(zip(sev, fev)):
            if a != b:
                note(f"checker event[{i}]: slow={a} fast={b}")
                break
        else:
            note(f"checker events: slow={len(sev)} fast={len(fev)}")
    if slow.recorder.final_cycle != fast.recorder.final_cycle:
        note(
            f"checker finish cycle: slow={slow.recorder.final_cycle} "
            f"fast={fast.recorder.final_cycle}"
        )

    if slow.telemetry != fast.telemetry:
        note(_telemetry_divergence(slow.telemetry, fast.telemetry))

    for name in sorted(set(slow.outputs) | set(fast.outputs)):
        a, b = slow.outputs.get(name), fast.outputs.get(name)
        if a is None or b is None:
            note(f"output {name!r} missing from one mode")
        elif a.shape != b.shape or a.tobytes() != b.tobytes():
            note(f"output {name!r} differs bit-wise")

    slices = sorted(set(slow.memory) | set(fast.memory))
    for name in slices:
        a, b = slow.memory.get(name), fast.memory.get(name)
        if a is None or b is None:
            note(f"MEM slice {name} materialized in only one mode")
        elif a != b:
            note(f"MEM slice {name} differs bit-wise")

    if result.replay is not None:
        _compare_replay(result)


def _compare_replay(result: LockstepResult) -> None:
    """Third leg: the replayed plan against the cycle-by-cycle reference.

    Everything the replay engine reconstructs must be bit-identical to
    the dense run: outputs, memory, cycle/instruction counts, activity,
    the dispatch trace, and the merged telemetry snapshot.
    ``skipped_cycles`` is compared against the fast leg — the plan was
    recorded under fast-forward, whose skip tally is part of its
    contract.
    """
    slow, fast, replay = result.slow, result.fast, result.replay
    note = result.mismatches.append

    if replay.run.cycles != slow.run.cycles:
        note(
            f"replay cycle count: slow={slow.run.cycles} "
            f"replay={replay.run.cycles}"
        )
    if replay.run.instructions != slow.run.instructions:
        note(
            f"replay instructions: slow={slow.run.instructions} "
            f"replay={replay.run.instructions}"
        )
    if replay.run.skipped_cycles != fast.run.skipped_cycles:
        note(
            f"replay skipped cycles: fast={fast.run.skipped_cycles} "
            f"replay={replay.run.skipped_cycles}"
        )
    if replay.run.activity != slow.run.activity:
        note(
            f"replay activity counts: slow={slow.run.activity} "
            f"replay={replay.run.activity}"
        )
    if replay.run.trace != slow.run.trace:
        for i, (a, b) in enumerate(zip(slow.run.trace, replay.run.trace)):
            if a != b:
                note(f"replay trace[{i}]: slow={a} replay={b}")
                break
        else:
            note(
                f"replay trace length: slow={len(slow.run.trace)} "
                f"replay={len(replay.run.trace)}"
            )
    if replay.telemetry != slow.telemetry:
        note("replay " + _telemetry_divergence(slow.telemetry, replay.telemetry))
    for name in sorted(set(slow.outputs) | set(replay.outputs)):
        a, b = slow.outputs.get(name), replay.outputs.get(name)
        if a is None or b is None:
            note(f"replay output {name!r} missing from one mode")
        elif a.shape != b.shape or a.tobytes() != b.tobytes():
            note(f"replay output {name!r} differs bit-wise")
    for name in sorted(set(slow.memory) | set(replay.memory)):
        a, b = slow.memory.get(name), replay.memory.get(name)
        if a is None or b is None:
            note(f"replay MEM slice {name} materialized in only one mode")
        elif a != b:
            note(f"replay MEM slice {name} differs bit-wise")


def _telemetry_divergence(slow: dict, fast: dict) -> str:
    """Locate the first differing counter between two telemetry snapshots."""
    for scope in ("window_cycles", "cycles"):
        if slow.get(scope) != fast.get(scope):
            return (
                f"telemetry {scope}: slow={slow.get(scope)} "
                f"fast={fast.get(scope)}"
            )
    sc, fc = slow.get("counters", {}), fast.get("counters", {})
    for unit in sorted(set(sc) | set(fc)):
        a, b = sc.get(unit, {}), fc.get(unit, {})
        for counter in sorted(set(a) | set(b)):
            wa, wb = a.get(counter, {}), b.get(counter, {})
            if wa == wb:
                continue
            for window in sorted(set(wa) | set(wb), key=int):
                va, vb = wa.get(window), wb.get(window)
                if va != vb:
                    return (
                        f"telemetry {unit}.{counter} window {window}: "
                        f"slow={va} fast={vb}"
                    )
    ss, fs = slow.get("scalars", {}), fast.get("scalars", {})
    for key in sorted(set(ss) | set(fs)):
        if ss.get(key) != fs.get(key):
            return (
                f"telemetry scalar {key}: slow={ss.get(key)} "
                f"fast={fs.get(key)}"
            )
    return "telemetry snapshots differ (structure mismatch)"


# ----------------------------------------------------------------------
def assert_trace_lockstep(tracer_a, tracer_b) -> None:
    """Assert two request traces did cycle-identical on-chip work.

    The cycle-domain projection of a request trace
    (:meth:`repro.obs.rtrace.RequestTracer.cycle_signature` — span cycle
    counts plus retained instruction-dispatch events, host microseconds
    excluded, order-insensitive) is a pure function of the executed
    programs, so a serve session traced under the dense core and one
    traced under the fast-forward core must agree exactly.  Raises
    :class:`~repro.errors.DivergenceError` at the first differing entry.
    """
    sig_a = tracer_a.cycle_signature()
    sig_b = tracer_b.cycle_signature()
    if sig_a == sig_b:
        return
    if len(sig_a) != len(sig_b):
        raise DivergenceError(
            f"trace cycle signatures differ in size: "
            f"{len(sig_a)} vs {len(sig_b)} anchored spans"
        )
    for index, (entry_a, entry_b) in enumerate(zip(sig_a, sig_b)):
        if entry_a != entry_b:
            raise DivergenceError(
                f"trace cycle signatures diverge at anchored span "
                f"{index}: {entry_a[:4]} vs {entry_b[:4]}"
            )
    raise DivergenceError("trace cycle signatures differ")
