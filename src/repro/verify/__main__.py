"""CLI entry point: ``python -m repro.verify [--threshold 0.9] [--full]``.

Runs the conformance sweep on the small test chip (or the full TSP with
``--full``), prints the case table and the ISA coverage report, and exits
non-zero if any case fails or a coverage class drops below the threshold.
"""

from __future__ import annotations

import argparse
import sys

from ..config import groq_tsp_v1, small_test_chip
from .suite import run_conformance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="TSP simulator conformance sweep and ISA coverage check",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.9,
        help="minimum per-class opcode coverage fraction (default 0.9)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run on the full groq_tsp_v1 chip instead of the test chip",
    )
    args = parser.parse_args(argv)

    config = groq_tsp_v1() if args.full else small_test_chip()
    summary = run_conformance(config, threshold=args.threshold)
    print(summary.render())
    return 0 if summary.ok else 1


if __name__ == "__main__":
    sys.exit(main())
