"""The differential oracle: cycle simulator vs. graph interpreter.

``run_differential`` executes a built program on both models and compares
every output bit-for-bit.  On a mismatch it assembles a
:class:`DivergenceReport` — the minimized repro an engineer needs: which
output, the first divergent element, expected/actual values, the ancestor
op subgraph feeding that output, the builder seed (when provided), and the
cycle of the Write that committed the divergent row, recovered from the
dispatch trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.api import StreamProgramBuilder
from ..compiler.runner import bind_input, fetch_output, load_compiled
from ..compiler.scheduler import CompiledProgram
from ..errors import DivergenceError, SimulationError
from ..sim.chip import RunResult, TspChip
from .interpreter import GraphInterpreter
from .invariants import InvariantChecker


@dataclass
class OutputDivergence:
    """First divergent element of one output tensor."""

    name: str
    row: int
    lane: int
    expected: object
    actual: object
    write_cycle: int | None = None

    def __str__(self) -> str:
        cycle = (
            "commit cycle unknown"
            if self.write_cycle is None
            else f"committed by Write dispatched at cycle {self.write_cycle}"
        )
        return (
            f"{self.name}[{self.row}, {self.lane}]: expected "
            f"{self.expected!r}, simulator produced {self.actual!r} ({cycle})"
        )


@dataclass
class DivergenceReport:
    """A minimized repro for a simulator/interpreter disagreement."""

    divergences: list[OutputDivergence]
    subgraph: list[str]
    seed: int | None = None

    def render(self) -> str:
        lines = ["differential oracle: simulator and interpreter disagree"]
        if self.seed is not None:
            lines.append(f"repro seed: {self.seed}")
        lines.extend(f"  {d}" for d in self.divergences)
        lines.append("op subgraph feeding the first divergent output:")
        lines.extend(f"  {s}" for s in self.subgraph)
        return "\n".join(lines)


@dataclass
class DifferentialResult:
    """Both executions plus the comparison verdict."""

    outputs: dict[str, np.ndarray]
    reference: dict[str, np.ndarray]
    run: RunResult
    report: DivergenceReport | None = None
    checkers: list[InvariantChecker] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report is None


def run_differential(
    builder: StreamProgramBuilder,
    compiled: CompiledProgram | None = None,
    inputs: dict[str, np.ndarray] | None = None,
    seed: int | None = None,
    after_load=None,
    checkers: list[InvariantChecker] | None = None,
    warmup_barrier: bool = False,
    max_cycles: int = 1_000_000,
    fast_forward: bool = True,
) -> DifferentialResult:
    """Execute on the simulator and the interpreter; compare bit-exactly.

    ``after_load(chip)`` runs after the memory image and inputs are
    emplaced but before the program starts — the hook used by negative
    tests to seed faults.  ``checkers`` are attached to the chip for the
    run and returned on the result for inspection.  ``fast_forward``
    selects the simulator's execution core, so the oracle can referee
    both the skipping path and the cycle-by-cycle reference.
    """
    compiled = compiled if compiled is not None else builder.compile()
    inputs = inputs or {}
    checkers = checkers or []

    chip = TspChip(builder.config, timing=builder.timing, trace=True)
    for checker in checkers:
        chip.attach_checker(checker)
    load_compiled(chip, compiled)
    for name, spec in compiled.inputs.items():
        if name not in inputs:
            raise SimulationError(f"input {name!r} was not bound")
        bind_input(chip, spec, inputs[name])
    if after_load is not None:
        after_load(chip)
    run = chip.run(
        compiled.program,
        max_cycles=max_cycles,
        warmup_barrier=warmup_barrier,
        fast_forward=fast_forward,
    )
    outputs = {
        name: fetch_output(chip, spec)
        for name, spec in compiled.outputs.items()
    }

    reference = GraphInterpreter(builder.config).run(builder.graph, inputs)
    report = _compare(builder, compiled, outputs, reference, run, seed)
    return DifferentialResult(
        outputs=outputs,
        reference=reference,
        run=run,
        report=report,
        checkers=checkers,
    )


def assert_conformance(
    builder: StreamProgramBuilder, **kwargs
) -> DifferentialResult:
    """``run_differential`` that raises :class:`DivergenceError` on mismatch."""
    result = run_differential(builder, **kwargs)
    if result.report is not None:
        raise DivergenceError(result.report.render())
    return result


# ----------------------------------------------------------------------
def _compare(
    builder: StreamProgramBuilder,
    compiled: CompiledProgram,
    outputs: dict[str, np.ndarray],
    reference: dict[str, np.ndarray],
    run: RunResult,
    seed: int | None,
) -> DivergenceReport | None:
    divergences: list[OutputDivergence] = []
    first_bad_name: str | None = None
    for name in compiled.outputs:
        actual = outputs[name]
        expected = reference.get(name)
        if expected is None:
            continue
        expected = np.asarray(expected, dtype=actual.dtype)
        # bit-exact: compare raw storage, so -0.0 != 0.0 and NaN == NaN
        if actual.shape == expected.shape and (
            actual.tobytes() == expected.tobytes()
        ):
            continue
        row, lane = _first_difference(expected, actual)
        divergences.append(
            OutputDivergence(
                name=name,
                row=row,
                lane=lane,
                expected=expected[row, lane],
                actual=actual[row, lane],
                write_cycle=_write_cycle_of(compiled, run, name, row),
            )
        )
        if first_bad_name is None:
            first_bad_name = name
    if not divergences:
        return None
    return DivergenceReport(
        divergences=divergences,
        subgraph=_ancestor_subgraph(builder, first_bad_name),
        seed=seed,
    )


def _first_difference(
    expected: np.ndarray, actual: np.ndarray
) -> tuple[int, int]:
    if expected.shape != actual.shape:
        return 0, 0
    diff = expected.view(np.uint8) != actual.view(np.uint8)
    flat = int(np.argmax(diff.reshape(expected.shape[0], -1).any(axis=1)))
    row = flat
    row_diff = (
        expected[row : row + 1].tobytes() != actual[row : row + 1].tobytes()
    )
    assert row_diff
    lane_mask = expected[row] != actual[row]
    if not lane_mask.any():
        # value differs only at the bit level (e.g. -0.0 vs 0.0)
        byte_mask = (
            expected[row : row + 1].view(np.uint8)
            != actual[row : row + 1].view(np.uint8)
        ).reshape(-1)
        lane = int(np.argmax(byte_mask)) // expected.dtype.itemsize
    else:
        lane = int(np.argmax(lane_mask))
    return row, lane


def _write_cycle_of(
    compiled: CompiledProgram, run: RunResult, name: str, row: int
) -> int | None:
    """Dispatch cycle of the Write that stored plane 0 of ``row``."""
    spec = compiled.outputs[name]
    layout = spec.layout
    if layout.is_parallel:
        placement = layout.parallel[row]
        address = placement.base_address
    else:
        placement = layout.planes[0]
        address = placement.base_address + 2 * row
    icu_name = f"MEM_{placement.hemisphere.value}{placement.slice_index}"
    needle = f"address={address},"
    for event in run.trace:
        if (
            event.mnemonic == "Write"
            and event.icu == icu_name
            and needle in event.text
        ):
            return event.cycle
    return None


def _ancestor_subgraph(
    builder: StreamProgramBuilder, output_name: str | None
) -> list[str]:
    graph = builder.graph
    write_node = next(
        (
            graph.node(i)
            for i in graph.outputs
            if graph.node(i).name == output_name
        ),
        None,
    )
    if write_node is None:
        return []
    keep: set[int] = set()
    stack = [write_node.id]
    while stack:
        nid = stack.pop()
        if nid in keep:
            continue
        keep.add(nid)
        stack.extend(graph.node(nid).inputs)
    return [str(graph.node(i)) for i in sorted(keep)]
