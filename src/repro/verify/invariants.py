"""Runtime invariant checkers for the cycle simulator.

Checkers attach to a chip via :meth:`TspChip.attach_checker` and observe
three event streams during a run:

* ``on_drive(cycle, direction, stream, position)`` — every stream-register
  drive, *including* ones the simulator is about to fault on;
* ``on_mem_access(cycle, slice, kind, bank, address)`` — every SRAM access
  a MEM slice performs, before conflict faulting;
* ``on_dispatch(cycle, icu, instruction)`` — every instruction dispatch.

Unlike the simulator's own hard faults (which raise and abort the run),
checkers *record* violations, so a test can assert that a seeded defect was
observed — and so several defects can be collected from one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..arch.geometry import Direction
from ..compiler.allocator import INPUT_BANK, RESULT_BANK
from ..errors import InvariantViolationError
from ..isa.base import Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compiler.scheduler import ScheduleIntent


@dataclass(frozen=True)
class Violation:
    """One recorded invariant breach."""

    cycle: int
    kind: str
    message: str

    def __str__(self) -> str:
        return f"[cycle {self.cycle}] {self.kind}: {self.message}"


class InvariantChecker:
    """Base checker: no-op hooks plus violation bookkeeping."""

    name = "invariant"

    def __init__(self) -> None:
        self.violations: list[Violation] = []

    # hooks ------------------------------------------------------------
    def on_dispatch(
        self, cycle: int, icu: str, instruction: Instruction
    ) -> None:  # pragma: no cover - overridden
        pass

    def on_drive(
        self, cycle: int, direction: Direction, stream: int, position: int
    ) -> None:  # pragma: no cover - overridden
        pass

    def on_mem_access(
        self, cycle: int, slice_name: str, kind: str, bank: int, address: int
    ) -> None:  # pragma: no cover - overridden
        pass

    def on_cycles_skipped(self, first_cycle: int, n_cycles: int) -> None:
        """Bulk notification from the fast-forward core.

        The simulator crossed ``n_cycles`` quiescent cycles starting at
        ``first_cycle`` in one shot.  By construction no dispatch, drive,
        or SRAM access occurred in the span — the per-event hooks above
        miss nothing — so the base implementation is a no-op.  Checkers
        that integrate per-cycle state (occupancy accounting, power
        windows) override this to account for the span in bulk.
        """

    def finish(self, cycle: int) -> None:
        pass

    # reporting --------------------------------------------------------
    def record(self, cycle: int, kind: str, message: str) -> None:
        self.violations.append(Violation(cycle, kind, message))

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:20])
            extra = len(self.violations) - 20
            if extra > 0:
                summary += f"\n... and {extra} more"
            raise InvariantViolationError(
                f"{self.name}: {len(self.violations)} violation(s)\n{summary}"
            )


class StreamCollisionChecker(InvariantChecker):
    """Two producers driving one stream register in one cycle.

    The simulator also hard-faults on this; the checker exists so the
    condition is *observable* (negative tests, multi-defect collection) and
    so a future relaxation of the hard fault cannot silently lose coverage.
    """

    name = "stream-collision"

    def __init__(self) -> None:
        super().__init__()
        self._cycle = -1
        self._driven: set[tuple[Direction, int, int]] = set()

    def on_drive(
        self, cycle: int, direction: Direction, stream: int, position: int
    ) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._driven.clear()
        key = (direction, stream, position)
        if key in self._driven:
            self.record(
                cycle,
                "stream-collision",
                f"two producers drove stream {stream}{direction.value} at "
                f"position {position}",
            )
        self._driven.add(key)


class BankDisciplineChecker(InvariantChecker):
    """MEM pseudo-dual-port constraint plus the compiler's bank discipline.

    Section IV-A: one read and one write may share a cycle only on opposite
    banks.  The stream compiler additionally keeps a convention — operand
    reads come from bank 0 (``INPUT_BANK``) and result writes land in bank 1
    (``RESULT_BANK``) — which is what makes same-cycle read+write physically
    schedulable.  ``strict_discipline`` enforces that convention; leave it
    off for hand-built programs that address banks freely.
    """

    name = "bank-discipline"

    def __init__(self, strict_discipline: bool = False) -> None:
        super().__init__()
        self.strict_discipline = strict_discipline
        self._accesses: dict[tuple[str, int], list[tuple[str, int]]] = {}

    def on_mem_access(
        self, cycle: int, slice_name: str, kind: str, bank: int, address: int
    ) -> None:
        key = (slice_name, cycle)
        accesses = self._accesses.setdefault(key, [])
        for other_kind, other_bank in accesses:
            if other_kind == kind:
                self.record(
                    cycle,
                    "bank-conflict",
                    f"{slice_name}: two {kind}s in one cycle",
                )
            elif other_bank == bank:
                self.record(
                    cycle,
                    "bank-conflict",
                    f"{slice_name}: read and write hit bank {bank}",
                )
        accesses.append((kind, bank))
        if len(self._accesses) > 256:
            for old in [k for k in self._accesses if k[1] < cycle - 8]:
                del self._accesses[old]
        if self.strict_discipline:
            expected = INPUT_BANK if kind == "read" else RESULT_BANK
            if bank != expected:
                self.record(
                    cycle,
                    "bank-discipline",
                    f"{slice_name}: {kind} of address {address} hit bank "
                    f"{bank}, compiler convention is bank {expected}",
                )


class TimingContractChecker(InvariantChecker):
    """Replays a :class:`ScheduleIntent` against the observed run.

    Verifies both halves of Equation 4/5: every reserved dispatch cell fires
    with the promised mnemonic at the promised cycle, and every predicted
    stream drive — ``t_drive = t_dispatch + d_func``, positions per the
    moving frame — is observed.  Valid only for a program executed exactly
    as compiled: a warmup barrier or an ``insert_ifetch`` pass shifts every
    queue and the contract no longer applies.
    """

    name = "timing-contract"

    def __init__(self, intent: "ScheduleIntent") -> None:
        super().__init__()
        self.intent = intent
        self._seen_dispatch: set[tuple[str, int]] = set()
        self._seen_drives: set[tuple[Direction, int, int, int]] = set()

    def on_dispatch(
        self, cycle: int, icu: str, instruction: Instruction
    ) -> None:
        if instruction.mnemonic == "NOP":
            return  # padding, not a reserved cell
        cells = self.intent.dispatch_cells.get(icu)
        expected = None if cells is None else cells.get(cycle)
        if expected is None:
            self.record(
                cycle,
                "unexpected-dispatch",
                f"{icu}: dispatched {instruction.mnemonic} with no "
                "reserved cell at this cycle",
            )
        elif expected != instruction.mnemonic:
            self.record(
                cycle,
                "dispatch-mismatch",
                f"{icu}: dispatched {instruction.mnemonic}, schedule "
                f"reserved {expected}",
            )
        self._seen_dispatch.add((icu, cycle))

    def on_drive(
        self, cycle: int, direction: Direction, stream: int, position: int
    ) -> None:
        self._seen_drives.add((direction, stream, position, cycle))

    def finish(self, cycle: int) -> None:
        for icu, cells in self.intent.dispatch_cells.items():
            for t, mnemonic in sorted(cells.items()):
                if (icu, t) not in self._seen_dispatch:
                    self.record(
                        t,
                        "missing-dispatch",
                        f"{icu}: schedule reserved {mnemonic} at cycle {t} "
                        "but nothing dispatched",
                    )
        for predicted in self.intent.drives:
            missing = [
                e
                for e in predicted.expected_drives()
                if e not in self._seen_drives
            ]
            for direction, stream, position, t in missing[:4]:
                self.record(
                    t,
                    "missing-drive",
                    f"{predicted.name}: predicted drive of stream "
                    f"{stream}{direction.value} at position {position}, "
                    f"cycle {t} was not observed",
                )
            if len(missing) > 4:
                self.record(
                    missing[4][3],
                    "missing-drive",
                    f"{predicted.name}: {len(missing) - 4} further "
                    "predicted drives not observed",
                )
