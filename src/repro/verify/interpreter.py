"""A pure-numpy interpreter for stream-compiler dataflow graphs.

This is the differential oracle's reference model: it evaluates a
:class:`~repro.compiler.graph.Graph` with no notion of cycles, streams,
queues, or placement, using the *same* element-level semantics as the
functional units (:mod:`repro.sim.alu`, the MXM dot product, the SXM lane
transforms).  If the scheduler and simulator are correct, running a
compiled program on the chip must produce bit-identical outputs.

One fidelity rule matters throughout: the hardware operates on full
``n_lanes``-wide vectors, so every intermediate here is kept as a
lane-padded ``(n_vectors, n_lanes)`` array and truncated to the declared
``length`` only at WRITE nodes.  The padding is semantically visible —
``exp(0) == 1.0`` in the padded region, and a later lane shift can pull
those values into visible lanes — so truncating early would diverge from
the chip.
"""

from __future__ import annotations

import numpy as np

from ..arch.streams import DType
from ..config import ArchConfig
from ..errors import VerificationError
from ..sim import alu
from ..compiler.graph import Graph, Node, OpKind


class GraphInterpreter:
    """Evaluates dataflow graphs over lane-padded numpy arrays."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def run(
        self, graph: Graph, inputs: dict[str, np.ndarray] | None = None
    ) -> dict[str, np.ndarray]:
        """Evaluate ``graph``; returns {output name: (n, length) array}."""
        inputs = inputs or {}
        values: dict[int, np.ndarray] = {}
        outputs: dict[str, np.ndarray] = {}
        for node in graph.topological_order():
            if node.kind is OpKind.WRITE:
                src = values[node.inputs[0]]
                outputs[node.name] = src[:, : node.length].copy()
            else:
                values[node.id] = self._eval(graph, node, values, inputs)
        return outputs

    # ------------------------------------------------------------------
    def _pad(self, data: np.ndarray, dtype: DType) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(data, dtype=dtype.numpy_dtype))
        n, length = arr.shape
        lanes = self.config.n_lanes
        if length > lanes:
            raise VerificationError(
                f"vector length {length} exceeds the {lanes}-lane maxVL"
            )
        padded = np.zeros((n, lanes), dtype=dtype.numpy_dtype)
        padded[:, :length] = arr
        return padded

    def _eval(
        self,
        graph: Graph,
        node: Node,
        values: dict[int, np.ndarray],
        inputs: dict[str, np.ndarray],
    ) -> np.ndarray:
        kind = node.kind
        if kind is OpKind.CONSTANT:
            return self._pad(node.data, node.dtype)
        if kind is OpKind.INPUT:
            if node.name not in inputs:
                raise VerificationError(
                    f"input {node.name!r} was not bound for interpretation"
                )
            return self._pad(inputs[node.name], node.dtype)

        srcs = [values[i] for i in node.inputs]
        if kind is OpKind.UNARY:
            in_dtype = graph.node(node.inputs[0]).dtype
            return alu.apply_unary(node.params["op"], in_dtype, srcs[0])
        if kind is OpKind.BINARY:
            in_dtype = graph.node(node.inputs[0]).dtype
            return alu.apply_binary(
                node.params["op"], in_dtype, srcs[0], srcs[1]
            )
        if kind is OpKind.CONVERT:
            in_dtype = graph.node(node.inputs[0]).dtype
            return alu.apply_convert(
                in_dtype, node.dtype, node.params.get("scale", 1.0), srcs[0]
            )
        if kind is OpKind.TEMPORAL_SHIFT:
            k = node.params["k"]
            out = np.zeros_like(srcs[0])
            if k < node.n_vectors:
                out[k:] = srcs[0][: node.n_vectors - k]
            return out
        if kind is OpKind.GATHER:
            return self._eval_gather(graph, node, srcs)
        if kind is OpKind.MATMUL:
            return self._eval_matmul(graph, node, srcs)
        if kind in (
            OpKind.SHIFT,
            OpKind.PERMUTE,
            OpKind.DISTRIBUTE,
            OpKind.SELECT,
        ):
            return self._eval_sxm_lane(node, srcs)
        if kind is OpKind.ROTATE:
            return self._eval_rotate(node, srcs[0])
        if kind is OpKind.TRANSPOSE16:
            return self._eval_transpose16(node, srcs[0])
        raise VerificationError(f"cannot interpret {kind.value}")

    # ------------------------------------------------------------------
    def _eval_gather(
        self, graph: Graph, node: Node, srcs: list[np.ndarray]
    ) -> np.ndarray:
        # padded index lanes are zero, so they read row 0's padded lanes —
        # exactly what the MEM slice's per-lane indirect read does
        table, indices = srcs
        idx = indices.astype(np.int64)
        if (idx >= table.shape[0]).any():
            raise VerificationError(f"{node.name}: gather index out of range")
        lanes = np.arange(self.config.n_lanes)
        return np.stack([table[row, lanes] for row in idx])

    def _eval_matmul(
        self, graph: Graph, node: Node, srcs: list[np.ndarray]
    ) -> np.ndarray:
        # mirrors MxmUnit._dot/_emit: int8 accumulates in int64 and clips to
        # int32 at ACC; fp16 multiplies in fp32, accumulates in float64, and
        # narrows to fp32 at ACC.  Weights are lane-padded (K_p, lanes) with
        # columns beyond m zero, so padded output lanes are zero too.
        lanes = self.config.n_lanes
        weight_dtype: DType = node.params.get("weight_dtype", DType.INT8)
        tiles: list[np.ndarray] = node.params["weight_tiles"]
        m = node.params["m"]
        acts = srcs[1:]
        n = node.n_vectors
        if weight_dtype is DType.INT8:
            acc = np.zeros((n, lanes), dtype=np.int64)
        else:
            acc = np.zeros((n, lanes), dtype=np.float64)
        for tile, act in zip(tiles, acts):
            k_p = tile.shape[0]
            w = np.zeros((k_p, lanes), dtype=weight_dtype.numpy_dtype)
            w[:, :m] = tile
            a = act[:, :k_p]
            if weight_dtype is DType.INT8:
                acc += a.astype(np.int64) @ w.astype(np.int64)
            else:
                partial = a.astype(np.float32) @ w.astype(np.float32)
                acc += partial.astype(np.float64)
        if node.dtype is DType.INT32:
            return np.clip(acc, -(2**31), 2**31 - 1).astype(np.int32)
        return acc.astype(np.float32)

    # ------------------------------------------------------------------
    def _require_single_plane(self, node: Node) -> None:
        if node.dtype.n_bytes != 1:
            raise VerificationError(
                f"{node.name}: compiled SXM lane ops route a single stream, "
                f"so {node.dtype.label} values would silently lose byte "
                "planes — use 1-byte dtypes"
            )

    def _eval_sxm_lane(self, node: Node, srcs: list[np.ndarray]) -> np.ndarray:
        self._require_single_plane(node)
        lanes = self.config.n_lanes
        x = srcs[0]
        if node.kind is OpKind.SHIFT:
            n = node.params["amount"]
            out = np.zeros_like(x)
            if n == 0:
                return x.copy()
            if n >= lanes:
                return out
            if node.params.get("south"):
                out[:, n:] = x[:, :-n]
            else:
                out[:, :-n] = x[:, n:]
            return out
        if node.kind is OpKind.PERMUTE:
            mapping = np.asarray(node.params["mapping"], dtype=np.int64)
            return x[:, mapping]
        if node.kind is OpKind.DISTRIBUTE:
            per = self.config.lanes_per_superlane
            mapping = np.asarray(node.params["mapping"], dtype=np.int64)
            zero = mapping < 0
            safe = np.where(zero, 0, mapping)
            blocks = x.reshape(x.shape[0], -1, per)
            out = blocks[:, :, safe]
            out[:, :, zero] = 0
            return out.reshape(x.shape[0], -1)
        # SELECT
        mask = self._select_mask(node.params["mask"])
        a, b = srcs
        return np.where(mask, b, a).astype(node.dtype.numpy_dtype)

    def _select_mask(self, entries) -> np.ndarray:
        lanes = self.config.n_lanes
        if not entries:
            return np.zeros(lanes, dtype=bool)
        m = np.asarray(entries, dtype=np.int64)
        if m.size == lanes:
            return m != 0
        if m.size == self.config.lanes_per_superlane:
            return np.tile(m != 0, self.config.n_superlanes)
        raise VerificationError(
            f"Select mask must cover {lanes} lanes or one superlane"
        )

    def _eval_rotate(self, node: Node, x: np.ndarray) -> np.ndarray:
        self._require_single_plane(node)
        n = node.params["n"]
        per = self.config.lanes_per_superlane
        blocks = x[0].reshape(-1, per)
        grid = blocks[:, : n * n].reshape(-1, n, n)
        rows = []
        for r in range(n * n):
            dr, dc = divmod(r, n)
            rolled = np.roll(grid, shift=(-dr, -dc), axis=(1, 2))
            out = np.zeros_like(blocks)
            out[:, : n * n] = rolled.reshape(-1, n * n)
            rows.append(out.reshape(-1))
        return np.stack(rows)

    def _eval_transpose16(self, node: Node, x: np.ndarray) -> np.ndarray:
        self._require_single_plane(node)
        per = self.config.lanes_per_superlane
        # cube[s, superlane, lane] exactly as SxmUnit._exec_transpose
        cube = np.stack([row.reshape(-1, per) for row in x], axis=0)
        transposed = cube.transpose(2, 1, 0)
        return np.stack([transposed[s].reshape(-1) for s in range(per)])


def interpret(
    graph: Graph,
    config: ArchConfig,
    inputs: dict[str, np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Convenience wrapper: evaluate ``graph`` under ``config``."""
    return GraphInterpreter(config).run(graph, inputs)
