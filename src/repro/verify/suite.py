"""The conformance sweep: every instruction class, oracle-checked.

Compiled cases go through :func:`repro.verify.oracle.assert_conformance`
with the full checker stack attached (stream collisions, bank discipline,
the Equation-4/5 timing contract); instructions the stream compiler never
emits — ``LW``, ``Scatter``, ``Repeat``, ``Config``, ``Ifetch``,
``Deskew``/``Send``/``Receive`` — are exercised by hand-built programs with
independently computed expected results.  One :class:`CoverageTracker`
observes every run, and :func:`run_conformance` fails if any instruction
class drops below the coverage threshold.

Run standalone with ``python -m repro.verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.geometry import Direction, Hemisphere
from ..arch.streams import DType, join_byte_planes
from ..compiler.api import StreamProgramBuilder
from ..config import ArchConfig, small_test_chip
from ..errors import CoverageError, VerificationError
from ..isa import (
    Accumulate,
    ActivationBufferControl,
    Config,
    Deskew,
    Gather,
    IcuId,
    Ifetch,
    InstallWeights,
    LoadWeights,
    Nop,
    Program,
    Read,
    Receive,
    Repeat,
    Scatter,
    Send,
    Write,
)
from ..sim.chip import TspChip
from .coverage import CoverageTracker
from .invariants import (
    BankDisciplineChecker,
    InvariantChecker,
    StreamCollisionChecker,
    TimingContractChecker,
)
from .oracle import assert_conformance

E = Direction.EASTWARD
W = Direction.WESTWARD


@dataclass
class CaseResult:
    """Outcome of one conformance case."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class ConformanceSummary:
    """All case outcomes plus the accumulated ISA coverage."""

    results: list[CaseResult] = field(default_factory=list)
    tracker: CoverageTracker = field(default_factory=CoverageTracker)
    threshold: float = 0.9
    coverage_failure: str | None = None

    @property
    def ok(self) -> bool:
        return self.coverage_failure is None and all(
            r.ok for r in self.results
        )

    def render(self) -> str:
        lines = ["conformance sweep"]
        for r in self.results:
            mark = "pass" if r.ok else "FAIL"
            lines.append(f"  [{mark}] {r.name}")
            if r.detail:
                lines.extend(f"      {l}" for l in r.detail.splitlines()[:12])
        lines.append("")
        lines.append(self.tracker.render())
        if self.coverage_failure:
            lines.append(f"COVERAGE FAIL: {self.coverage_failure}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# compiled cases (differential oracle + full checker stack)
# ----------------------------------------------------------------------
def _int8(shape, lo=-50, hi=50, offset=0):
    count = int(np.prod(shape))
    span = hi - lo
    return ((np.arange(count) * 7 + offset) % span + lo).astype(
        np.int8
    ).reshape(shape)


def _fp16(shape, offset=0):
    count = int(np.prod(shape))
    vals = ((np.arange(count) * 13 + offset) % 31 - 15) / 8.0
    return vals.astype(np.float16).reshape(shape)


def _oracle(builder, tracker, inputs=None, warmup=False, compiled=None):
    compiled = compiled if compiled is not None else builder.compile()
    checkers: list[InvariantChecker] = [
        StreamCollisionChecker(),
        BankDisciplineChecker(strict_discipline=True),
        tracker.checker(),
    ]
    if not warmup:
        # the contract only holds for a program executed exactly as compiled
        checkers.append(TimingContractChecker(compiled.intent))
    assert_conformance(
        builder,
        compiled=compiled,
        inputs=inputs,
        checkers=checkers,
        warmup_barrier=warmup,
    )
    for checker in checkers:
        checker.raise_if_violated()


def case_elementwise_int8(config: ArchConfig, tracker: CoverageTracker):
    b = StreamProgramBuilder(config)
    x = b.constant_tensor("x", _int8((4, 50)))
    y = b.constant_tensor("y", _int8((4, 50), offset=3))
    b.write_back(b.add(x, y), "sum")
    b.write_back(b.relu(b.sub(x, y)), "relu")
    b.write_back(b.maximum(x, y), "max")
    b.write_back(b.mul(x, y, saturate=True), "prod")
    _oracle(b, tracker)


def case_fp16_transcendental(config: ArchConfig, tracker: CoverageTracker):
    b = StreamProgramBuilder(config)
    x = b.constant_tensor("x", np.abs(_fp16((2, 20))) + 0.5)
    b.write_back(b.tanh(x), "tanh")
    b.write_back(b.exp(b.negate(x)), "exp")
    b.write_back(b.rsqrt(x), "rsqrt")
    b.write_back(b.convert(x, DType.FP32), "wide")
    _oracle(b, tracker)


def case_temporal_shift(config: ArchConfig, tracker: CoverageTracker):
    b = StreamProgramBuilder(config)
    x = b.constant_tensor("x", _int8((6, 30)))
    b.write_back(b.add(x, b.temporal_shift(x, 2)), "windowed")
    _oracle(b, tracker)


def case_gather(config: ArchConfig, tracker: CoverageTracker):
    b = StreamProgramBuilder(config)
    table = _int8((8, 40))
    idx = b.input_tensor("idx", (3, 40), DType.UINT8)
    b.write_back(b.gather(table, idx, name="lut"), "gathered")
    indices = ((np.arange(3 * 40) * 5) % 8).astype(np.uint8).reshape(3, 40)
    _oracle(b, tracker, inputs={"idx": indices})


def case_matmul_int8_ktiled(config: ArchConfig, tracker: CoverageTracker):
    lanes = config.n_lanes
    b = StreamProgramBuilder(config)
    a0 = b.constant_tensor("a0", _int8((3, lanes), lo=-8, hi=8))
    a1 = b.constant_tensor("a1", _int8((3, lanes), lo=-8, hi=8, offset=5))
    w = _int8((2 * lanes, 24), lo=-8, hi=8, offset=11)
    b.write_back(b.matmul(w, [a0, a1], name="w"), "mm")
    _oracle(b, tracker)


def case_matmul_fp16(config: ArchConfig, tracker: CoverageTracker):
    b = StreamProgramBuilder(config)
    a = b.constant_tensor("a", _fp16((2, 32)))
    w = _fp16((32, 16), offset=7).astype(np.float16)
    b.write_back(b.matmul(w, a, name="wf"), "mmf")
    _oracle(b, tracker)


def case_sxm_lane_ops(config: ArchConfig, tracker: CoverageTracker):
    lanes = config.n_lanes
    per = config.lanes_per_superlane
    b = StreamProgramBuilder(config)
    x = b.constant_tensor("x", _int8((2, lanes)))
    y = b.constant_tensor("y", _int8((2, lanes), offset=9))
    b.write_back(b.shift(x, 3), "north")
    b.write_back(b.shift(x, 5, south=True), "south")
    b.write_back(b.permute(x, list(reversed(range(lanes)))), "rev")
    mapping = [(i + 1) % per if i != 4 else -1 for i in range(per)]
    b.write_back(b.distribute(x, mapping), "dist")
    mask = [i % 2 for i in range(per)]
    b.write_back(b.select(x, y, mask), "sel")
    _oracle(b, tracker)


def case_rotate(config: ArchConfig, tracker: CoverageTracker):
    b = StreamProgramBuilder(config)
    x = b.constant_tensor("x", _int8((1, config.n_lanes)))
    b.write_back(b.rotate(x, 3), "rot")
    _oracle(b, tracker)


def case_transpose16(config: ArchConfig, tracker: CoverageTracker):
    b = StreamProgramBuilder(config)
    x = b.constant_tensor("x", _int8((16, config.n_lanes)))
    b.write_back(b.transpose16(x), "tr")
    _oracle(b, tracker)


def case_warmup_barrier(config: ArchConfig, tracker: CoverageTracker):
    """Sync/Notify: the whole schedule shifts uniformly, outputs match."""
    b = StreamProgramBuilder(config)
    x = b.constant_tensor("x", _int8((2, 32)))
    y = b.constant_tensor("y", _int8((2, 32), offset=1))
    b.write_back(b.add(x, y), "sum")
    _oracle(b, tracker, warmup=True)


# ----------------------------------------------------------------------
# hand-built programs for instructions the compiler never emits
# ----------------------------------------------------------------------
def _hand_chip(config: ArchConfig, tracker: CoverageTracker):
    chip = TspChip(config, trace=True)
    checkers = [
        StreamCollisionChecker(),
        BankDisciplineChecker(),
        tracker.checker(),
    ]
    for checker in checkers:
        chip.attach_checker(checker)
    return chip, checkers


def _expect_equal(actual, expected, what: str) -> None:
    if not np.array_equal(actual, expected):
        raise VerificationError(
            f"{what}: simulator produced {actual!r}, expected {expected!r}"
        )


def case_scatter_hand(config: ArchConfig, tracker: CoverageTracker):
    """Scatter: per-lane indirect write (Section III-B)."""
    chip, checkers = _hand_chip(config, tracker)
    fp = chip.floorplan
    lanes = config.n_lanes
    values = (np.arange(lanes) * 3 % 251).astype(np.uint8)
    offsets = (np.arange(lanes) % 4).astype(np.uint8)
    chip.load_memory(Hemisphere.WEST, 0, 0, values[None, :])
    chip.load_memory(Hemisphere.WEST, 1, 2, offsets[None, :])

    w0, w1 = fp.mem_slice(Hemisphere.WEST, 0), fp.mem_slice(Hemisphere.WEST, 1)
    target = fp.mem_slice(Hemisphere.EAST, 3)
    # time both operands to arrive at the target in the same cycle
    arrive = 8 + max(fp.delta(w0, target), fp.delta(w1, target))
    program = Program()
    for slice_addr, address, stream in ((w0, 0, 0), (w1, 2, 1)):
        t_dispatch = arrive - fp.delta(slice_addr, target) - 5
        icu = IcuId(slice_addr)
        if t_dispatch > 0:
            program.add(icu, Nop(t_dispatch))
        program.add(icu, Read(address=address, stream=stream, direction=E))
    program.add(IcuId(target), Nop(arrive - 1))  # Scatter samples at +1
    program.add(
        IcuId(target), Scatter(stream=0, map_stream=1, direction=E, base=16)
    )
    chip.run(program)
    stored = chip.read_memory(Hemisphere.EAST, 3, 16, 4)
    expected = np.zeros((4, lanes), dtype=np.uint8)
    expected[offsets, np.arange(lanes)] = values
    _expect_equal(stored, expected, "scatter")
    for checker in checkers:
        checker.raise_if_violated()


def case_mxm_lw_staging(config: ArchConfig, tracker: CoverageTracker):
    """LW-staged install: Read rows -> LW buffer -> IW -> ABC -> ACC."""
    chip, checkers = _hand_chip(config, tracker)
    fp = chip.floorplan
    lanes = config.n_lanes
    rows = 4
    w = _int8((rows, lanes), lo=-6, hi=7)
    act = _int8((lanes,), lo=-4, hi=5, offset=2)

    mem = fp.mem_slice(Hemisphere.EAST, 0)
    mxm = fp.mxm(Hemisphere.EAST)
    delta = fp.delta(mem, mxm)
    for r in range(rows):
        chip.load_memory(Hemisphere.EAST, 0, 2 * r, w[r].view(np.uint8)[None, :])
    chip.load_memory(Hemisphere.EAST, 0, 101, act.view(np.uint8)[None, :])

    program = Program()
    t0 = 1
    mem_icu = IcuId(mem)
    program.add(mem_icu, Nop(t0))
    for r in range(rows):  # weight rows drive at t0+r+5
        program.add(mem_icu, Read(address=2 * r, stream=0, direction=E))
    program.add(mem_icu, Nop(1))
    program.add(mem_icu, Read(address=101, stream=0, direction=E))

    # LW row r samples at t0+r+5+delta (dskew 1)
    weights_icu = IcuId(mxm, 0)
    program.add(weights_icu, Nop(t0 + 4 + delta))
    for r in range(rows):
        program.add(
            weights_icu, LoadWeights(plane=0, row=r, stream=0, direction=E)
        )
    program.add(weights_icu, Nop(1))  # after the last LW capture
    program.add(
        weights_icu,
        InstallWeights(plane=0, rows=rows, cols=lanes, from_buffer=True),
    )

    # activation arrives at t0+10+delta; ABC samples at dispatch+1
    compute_icu = IcuId(mxm, 1)
    program.add(compute_icu, Nop(t0 + 9 + delta))
    program.add(
        compute_icu,
        ActivationBufferControl(
            plane=0, base_stream=0, direction=E, n_vectors=1
        ),
    )
    depth = chip.timing.mxm_pipeline_depth(config.mxm_plane_rows)
    program.add(compute_icu, Nop(depth))
    program.add(
        compute_icu,
        Accumulate(plane=0, base_stream=0, direction=W, n_vectors=1),
    )
    # ACC dispatches at t0+10+delta+depth, emits at +dfunc(3) westward
    emit = t0 + 13 + delta + depth
    for j in range(4):  # one byte plane per slice
        out = fp.mem_slice(Hemisphere.EAST, j)
        icu = IcuId(out)
        capture = emit + fp.delta(out, mxm)
        program.add(icu, Nop(capture - 1 - program.dispatch_length(icu)))
        program.add(icu, Write(address=120, stream=j, direction=W))
    chip.run(program)

    planes = [
        chip.read_memory(Hemisphere.EAST, j, 120)[0] for j in range(4)
    ]
    result = join_byte_planes(planes, DType.INT32)
    acc = w.astype(np.int64).T @ act[:rows].astype(np.int64)
    expected = np.clip(acc, -(2**31), 2**31 - 1).astype(np.int32)
    _expect_equal(result, expected, "LW-staged matmul")
    for checker in checkers:
        checker.raise_if_violated()


def case_c2c_loopback(config: ArchConfig, tracker: CoverageTracker):
    """Deskew/Send/Receive over a looped-back East link."""
    from ..sim.c2c import DEFAULT_LINK_LATENCY

    chip, checkers = _hand_chip(config, tracker)
    fp = chip.floorplan
    chip.c2c_unit(Hemisphere.EAST).loopback(0)
    data = (np.arange(config.n_lanes) * 11 % 256).astype(np.uint8)
    chip.load_memory(Hemisphere.EAST, 0, 4, data[None, :])

    program = Program()
    mem = IcuId(fp.mem_slice(Hemisphere.EAST, 0))
    c2c = IcuId(fp.c2c(Hemisphere.EAST), 0)
    program.add(mem, Read(address=4, stream=0, direction=E))
    hops = fp.delta(fp.mem_slice(Hemisphere.EAST, 0), fp.c2c(Hemisphere.EAST))
    program.add(c2c, Deskew(link=0))
    program.add(c2c, Nop(4 + hops - 1))
    program.add(c2c, Send(link=0, stream=0, direction=E))
    capture = 5 + hops
    program.add(c2c, Nop(DEFAULT_LINK_LATENCY))
    program.add(c2c, Receive(link=0, mem_slice=2, address=8))
    chip.run(program)
    landed = chip.read_memory(Hemisphere.EAST, 2, 8)[0]
    _expect_equal(landed, data, "c2c loopback")
    for checker in checkers:
        checker.raise_if_violated()


def case_icu_repeat_config(config: ArchConfig, tracker: CoverageTracker):
    """Config, Ifetch, and Repeat re-dispatching a Read."""
    chip, checkers = _hand_chip(config, tracker)
    fp = chip.floorplan
    data = (np.arange(config.n_lanes) * 5 % 256).astype(np.uint8)
    chip.load_memory(Hemisphere.WEST, 0, 0, data[None, :])

    src = fp.mem_slice(Hemisphere.WEST, 0)
    dst = fp.mem_slice(Hemisphere.EAST, 1)
    program = Program()
    icu = IcuId(src)
    program.add(icu, Config(superlane=0, power_on=True))
    program.add(icu, Ifetch())
    program.add(icu, Read(address=0, stream=0, direction=E))
    program.add(icu, Repeat(n=2, d=3))
    # Repeat re-executes the Read at cycles 3 and 6; the last drives at 11
    capture = 11 + fp.delta(src, dst)
    out = IcuId(dst)
    program.add(out, Nop(capture - 1))
    program.add(out, Write(address=30, stream=0, direction=E))
    chip.run(program)
    landed = chip.read_memory(Hemisphere.EAST, 1, 30)[0]
    _expect_equal(landed, data, "repeated read")
    for checker in checkers:
        checker.raise_if_violated()


# ----------------------------------------------------------------------
CASES = [
    ("elementwise-int8", case_elementwise_int8),
    ("fp16-transcendental", case_fp16_transcendental),
    ("temporal-shift", case_temporal_shift),
    ("gather", case_gather),
    ("matmul-int8-ktiled", case_matmul_int8_ktiled),
    ("matmul-fp16", case_matmul_fp16),
    ("sxm-lane-ops", case_sxm_lane_ops),
    ("rotate", case_rotate),
    ("transpose16", case_transpose16),
    ("warmup-barrier", case_warmup_barrier),
    ("scatter-hand", case_scatter_hand),
    ("mxm-lw-staging", case_mxm_lw_staging),
    ("c2c-loopback", case_c2c_loopback),
    ("icu-repeat-config", case_icu_repeat_config),
]


def run_conformance(
    config: ArchConfig | None = None, threshold: float = 0.9
) -> ConformanceSummary:
    """Run every conformance case; never raises, inspect ``summary.ok``."""
    config = config or small_test_chip()
    summary = ConformanceSummary(threshold=threshold)
    for name, case in CASES:
        try:
            case(config, summary.tracker)
            summary.results.append(CaseResult(name, True))
        except Exception as exc:  # noqa: BLE001 - each case is a test
            summary.results.append(CaseResult(name, False, str(exc)))
    try:
        summary.tracker.check(threshold)
    except CoverageError as exc:
        summary.coverage_failure = str(exc)
    return summary
