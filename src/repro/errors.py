"""Exception hierarchy for the TSP reproduction.

Every error raised by the library derives from :class:`TspError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish compiler, simulator, and configuration faults.
"""

from __future__ import annotations


class TspError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(TspError):
    """An architecture configuration is internally inconsistent."""


class IsaError(TspError):
    """An instruction is malformed or used outside its functional slice."""


class EncodingError(IsaError):
    """An instruction could not be encoded to or decoded from bytes."""


class CompileError(TspError):
    """The stream compiler could not produce a valid schedule."""


class AllocationError(CompileError):
    """Stream or memory allocation failed (out of streams, slices, or banks)."""


class ScheduleError(CompileError):
    """A schedule violates the timing model (operand/instruction mismatch)."""


class SimulationError(TspError):
    """The simulator detected an illegal condition at run time."""


class IqUnderflowError(SimulationError):
    """An instruction queue ran dry while the program still had instructions.

    The paper requires that "IQs never go empty so that a precise notion of
    logical time is maintained"; in strict-ifetch mode, underflow is fatal.
    """


class MemoryFaultError(SimulationError):
    """An uncorrectable (double-bit) ECC error was consumed by a slice."""


class BankConflictError(SimulationError):
    """A read and a write targeted the same SRAM bank in the same cycle."""


class StreamContentionError(SimulationError):
    """Two producers drove the same stream register in the same cycle."""


class VerificationError(TspError):
    """The conformance layer found a disagreement or a coverage gap."""


class DivergenceError(VerificationError):
    """The simulator and the graph interpreter disagreed bit-for-bit."""


class InvariantViolationError(VerificationError):
    """A runtime invariant checker recorded one or more violations."""


class CoverageError(VerificationError):
    """ISA coverage fell below the required threshold."""
