"""Exception hierarchy for the TSP reproduction.

Every error raised by the library derives from :class:`TspError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish compiler, simulator, and configuration faults.

Errors carry optional location context — which chip, which cycle, which
functional unit — filled in progressively as the exception propagates
outward: a raise site deep in the ECC layer knows none of these, the
capturing unit knows the unit and cycle, and the chip's run loop knows the
chip.  :meth:`TspError.with_context` only fills fields that are still
unset, so the most specific information always wins.
"""

from __future__ import annotations


class TspError(Exception):
    """Base class for all errors raised by this library.

    ``chip_id``/``cycle``/``unit`` locate the fault; any may be ``None``
    when unknown.  They render as a ``[chip 0, cycle 41, MEM_E3]`` prefix
    in ``str()`` so the location survives being raised past the chip.
    """

    def __init__(
        self,
        message: str = "",
        *,
        chip: int | str | None = None,
        cycle: int | None = None,
        unit: str | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.chip_id = chip
        self.cycle = cycle
        self.unit = unit

    def with_context(
        self,
        chip: int | str | None = None,
        cycle: int | None = None,
        unit: str | None = None,
    ) -> "TspError":
        """Fill in any location fields that are still unset; returns self."""
        if self.chip_id is None:
            self.chip_id = chip
        if self.cycle is None:
            self.cycle = cycle
        if self.unit is None:
            self.unit = unit
        return self

    def context(self) -> str:
        """The known location fields, rendered ``chip 0, cycle 41, MEM_E3``."""
        parts = []
        if self.chip_id is not None:
            parts.append(f"chip {self.chip_id}")
        if self.cycle is not None:
            parts.append(f"cycle {self.cycle}")
        if self.unit is not None:
            parts.append(str(self.unit))
        return ", ".join(parts)

    def __str__(self) -> str:
        ctx = self.context()
        return f"[{ctx}] {self.message}" if ctx else self.message


class ConfigError(TspError):
    """An architecture configuration is internally inconsistent."""


class IsaError(TspError):
    """An instruction is malformed or used outside its functional slice."""


class EncodingError(IsaError):
    """An instruction could not be encoded to or decoded from bytes."""


class CompileError(TspError):
    """The stream compiler could not produce a valid schedule."""


class AllocationError(CompileError):
    """Stream or memory allocation failed (out of streams, slices, or banks)."""


class ScheduleError(CompileError):
    """A schedule violates the timing model (operand/instruction mismatch)."""


class SimulationError(TspError):
    """The simulator detected an illegal condition at run time."""


class IqUnderflowError(SimulationError):
    """An instruction queue ran dry while the program still had instructions.

    The paper requires that "IQs never go empty so that a precise notion of
    logical time is maintained"; in strict-ifetch mode, underflow is fatal.
    """


class MemoryFaultError(SimulationError):
    """An uncorrectable (double-bit) ECC error was consumed by a slice."""


class BankConflictError(SimulationError):
    """A read and a write targeted the same SRAM bank in the same cycle."""


class StreamContentionError(SimulationError):
    """Two producers drove the same stream register in the same cycle."""


class C2cLinkError(SimulationError):
    """A C2C link fault: an uncorrectable transfer, a dead link, a deskew
    epoch mismatch, or a Receive scheduled without enough retry slack."""


class WatchdogError(SimulationError):
    """An armed watchdog deadline elapsed with work still unfinished."""


class ServeError(TspError):
    """The inference serving layer could not accept or complete a request."""


class RequestError(ServeError):
    """One request's terminal serving failure, with full attribution.

    ``outcome`` distinguishes why the request died:

    * ``"failed"`` — a non-retryable error (a software bug, a model
      contract violation) failed the batch outright.
    * ``"retryable_exhausted"`` — the failure was retryable hardware
      trouble, but the request ran out of budget: either its attempt
      counter hit the retry policy's ``max_attempts`` or its deadline no
      longer had one estimated batch-latency of slack.
    * ``"shed"`` — admission control rejected it (pool capacity down and
      the queue full of more valuable work).
    * ``"shutdown"`` — the server closed while it was still queued.

    ``attempt`` is the attempt that failed (0-based) and ``chip_index``
    the ring index of the chip the last failure was localized to (None
    for single-chip workers or when unknown) — together with the
    inherited chip/cycle/unit context, every retry and shed is
    attributable in logs, metrics, and traces.
    """

    def __init__(
        self,
        message: str = "",
        *,
        outcome: str = "failed",
        attempt: int = 0,
        chip_index: int | None = None,
        chip: int | str | None = None,
        cycle: int | None = None,
        unit: str | None = None,
    ) -> None:
        super().__init__(message, chip=chip, cycle=cycle, unit=unit)
        self.outcome = outcome
        self.attempt = attempt
        self.chip_index = chip_index


class VerificationError(TspError):
    """The conformance layer found a disagreement or a coverage gap."""


class DivergenceError(VerificationError):
    """The simulator and the graph interpreter disagreed bit-for-bit."""


class InvariantViolationError(VerificationError):
    """A runtime invariant checker recorded one or more violations."""


class CoverageError(VerificationError):
    """ISA coverage fell below the required threshold."""
