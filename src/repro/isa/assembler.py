"""Textual assembly format for TSP programs.

A human-readable, round-trippable serialization of a
:class:`~repro.isa.program.Program` — one section per instruction queue,
one instruction per line::

    .queue MEM_E0
        Read address=0, stream=4, direction=E
        NOP count=11
        Write address=9, stream=4, direction=E

    .queue VXM.alu0
        BinaryOp op=add_sat, src1_stream=4, ...

Field values serialize by type: ints as decimals, bools as true/false,
floats with full precision, enums by their short value (``E``/``W`` for
directions, op labels for ALU ops, dtype labels), tuples as
``(1,2,3)``.  ``parse(render(program)) == program`` for every program the
compiler can produce — tested property-style.
"""

from __future__ import annotations

import enum
from dataclasses import fields

from ..arch.geometry import Direction, Floorplan, Hemisphere, SliceKind
from ..arch.streams import DType
from ..config import ArchConfig
from ..errors import IsaError
from .base import INSTRUCTION_REGISTRY, Instruction
from .program import MXM_UNITS, SXM_UNITS, IcuId, Program
from .sxm import ShiftDirection
from .vxm import AluOp


def _render_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, Direction):
        return value.value
    if isinstance(value, ShiftDirection):
        return value.value
    if isinstance(value, DType):
        return value.label
    if isinstance(value, AluOp):
        return value.label
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, tuple):
        return "(" + ",".join(str(int(v)) for v in value) + ")"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _parse_value(default: object, text: str) -> object:
    if isinstance(default, bool):
        if text not in ("true", "false"):
            raise IsaError(f"expected true/false, got {text!r}")
        return text == "true"
    if isinstance(default, Direction):
        for member in Direction:
            if member.value == text:
                return member
        raise IsaError(f"unknown direction {text!r}")
    if isinstance(default, ShiftDirection):
        for member in ShiftDirection:
            if member.value == text:
                return member
        raise IsaError(f"unknown shift direction {text!r}")
    if isinstance(default, DType):
        return DType.from_label(text)
    if isinstance(default, AluOp):
        for member in AluOp:
            if member.label == text:
                return member
        raise IsaError(f"unknown ALU op {text!r}")
    if isinstance(default, tuple):
        body = text.strip()
        if not (body.startswith("(") and body.endswith(")")):
            raise IsaError(f"expected a tuple, got {text!r}")
        inner = body[1:-1].strip()
        if not inner:
            return ()
        return tuple(int(v) for v in inner.split(","))
    if isinstance(default, float):
        return float(text)
    if isinstance(default, int):
        return int(text)
    raise IsaError(f"cannot parse field with default {default!r}")


def render_instruction(instruction: Instruction) -> str:
    parts = [
        f"{f.name}={_render_value(getattr(instruction, f.name))}"
        for f in fields(instruction)
    ]
    if parts:
        return f"{instruction.mnemonic} " + ", ".join(parts)
    return instruction.mnemonic


def parse_instruction(line: str) -> Instruction:
    line = line.strip()
    if not line:
        raise IsaError("empty instruction line")
    head, _, rest = line.partition(" ")
    cls = INSTRUCTION_REGISTRY.get(head)
    if cls is None:
        raise IsaError(f"unknown mnemonic {head!r}")
    kwargs: dict[str, object] = {}
    defaults = {f.name: f.default for f in fields(cls)}
    rest = rest.strip()
    if rest:
        for pair in _split_fields(rest):
            name, _, value = pair.partition("=")
            name = name.strip()
            if name not in defaults:
                raise IsaError(f"{head} has no field {name!r}")
            kwargs[name] = _parse_value(defaults[name], value.strip())
    return cls(**kwargs)


def _split_fields(text: str) -> list[str]:
    """Split ``a=1, b=(2,3), c=4`` respecting parentheses."""
    parts: list[str] = []
    depth = 0
    current = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current).strip())
    return [p for p in parts if p]


def render_program(program: Program) -> str:
    """Serialize a whole program, one ``.queue`` section per ICU."""
    lines: list[str] = []
    for icu in program.icus:
        lines.append(f".queue {icu}")
        for instruction in program.queue(icu):
            lines.append(f"    {render_instruction(instruction)}")
        lines.append("")
    return "\n".join(lines)


def _parse_icu(name: str, floorplan: Floorplan) -> IcuId:
    """Invert ``str(IcuId)``: MEM_E3, VXM.alu5, SXM_W.permute, ..."""
    if name.startswith("MEM_"):
        hemisphere = Hemisphere.WEST if name[4] == "W" else Hemisphere.EAST
        index = int(name[5:])
        return IcuId(floorplan.mem_slice(hemisphere, index))
    if name.startswith("VXM.alu"):
        return IcuId(floorplan.vxm(), int(name[len("VXM.alu") :]))
    if name.startswith(("SXM_", "MXM_", "C2C_")):
        kind = name[:3]
        hemisphere = Hemisphere.WEST if name[4] == "W" else Hemisphere.EAST
        rest = name[6:]
        if kind == "SXM":
            return IcuId(
                floorplan.sxm(hemisphere), SXM_UNITS.index(rest)
            )
        if kind == "MXM":
            plane_s, queue_s = rest.split(".")
            plane = int(plane_s[len("plane") :])
            queue = MXM_UNITS.index(queue_s)
            return IcuId(floorplan.mxm(hemisphere), plane * 2 + queue)
        return IcuId(floorplan.c2c(hemisphere), int(rest[len("link") :]))
    raise IsaError(f"cannot parse ICU name {name!r}")


def parse_program(text: str, config: ArchConfig) -> Program:
    """Parse :func:`render_program` output back into a Program."""
    floorplan = Floorplan(config)
    program = Program()
    current: IcuId | None = None
    for raw in text.splitlines():
        line = raw.split(";")[0].strip()  # ; starts a comment
        if not line:
            continue
        if line.startswith(".queue"):
            name = line[len(".queue") :].strip()
            current = _parse_icu(name, floorplan)
            continue
        if current is None:
            raise IsaError(f"instruction before any .queue: {line!r}")
        program.add(current, parse_instruction(line))
    return program
