"""MXM (matrix execution module) instructions: LW, IW, ABC, ACC.

Each hemisphere's MXM holds two independent 320x320 MACC planes (four
chip-wide).  Weights are staged with ``LW``, installed into the array with
``IW`` (16 streams x 16 bytes install 256 weights per supercell per cycle;
all 409,600 weights land in under 40 cycles using all 32 streams in both
directions), activations are streamed in under ``ABC`` control, and int32 /
fp32 dot products are drained with ``ACC`` (Section III-D).

A plane computes, for each streamed activation vector ``a`` (K elements)::

    r = W.T @ a        # r has M elements, int32 or fp32

with ``W`` the installed K x M weight tile.  fp16 operation runs two
byte-planes in tandem, halving the number of independent planes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..arch.geometry import Direction, SliceKind
from ..arch.streams import DType
from ..errors import IsaError
from .base import Instruction, register_instruction

MXM_ONLY: frozenset[SliceKind] = frozenset({SliceKind.MXM})


def _check_plane(plane: int) -> None:
    if plane not in (0, 1):
        raise IsaError(
            f"plane must be 0 or 1 within a hemisphere MXM, got {plane}"
        )


@register_instruction
@dataclass(frozen=True)
class LoadWeights(Instruction):
    """``LW`` — stage weight vectors from streams into the weight buffer.

    Each dispatch captures one 320-byte vector from ``stream`` into buffer
    row ``row`` of the selected plane; the compiler issues it under
    ``Repeat`` to stage a whole tile.
    """

    mnemonic: ClassVar[str] = "LW"
    slice_kinds: ClassVar[frozenset[SliceKind]] = MXM_ONLY
    description: ClassVar[str] = (
        "Load weights (LW) from streams to weight buffer"
    )

    plane: int = 0
    row: int = 0
    stream: int = 0
    direction: Direction = Direction.EASTWARD

    def __post_init__(self) -> None:
        _check_plane(self.plane)


@register_instruction
@dataclass(frozen=True)
class InstallWeights(Instruction):
    """``IW`` — install weights from streams (or the LW buffer) into the array.

    When ``from_buffer`` is False, the install consumes ``n_streams``
    parallel streams starting at ``base_stream`` for however many cycles it
    takes to fill ``rows`` x ``cols`` weights at ``n_streams`` x 320 bytes
    per cycle (16 streams fill a full 320x320 plane in 20 cycles).
    """

    mnemonic: ClassVar[str] = "IW"
    slice_kinds: ClassVar[frozenset[SliceKind]] = MXM_ONLY
    description: ClassVar[str] = (
        "Install weights (IW) from streams or LW buffer into the 320x320 "
        "array"
    )

    plane: int = 0
    base_stream: int = 0
    n_streams: int = 16
    direction: Direction = Direction.EASTWARD
    rows: int = 320
    cols: int = 320
    from_buffer: bool = False
    dtype: DType = DType.INT8

    def __post_init__(self) -> None:
        _check_plane(self.plane)
        if self.n_streams < 1:
            raise IsaError("IW needs at least one stream")
        if self.rows < 1 or self.cols < 1:
            raise IsaError("IW tile dimensions must be positive")

    def install_cycles(self, lanes: int) -> int:
        """Cycles of stream input needed to deliver the whole tile.

        fp16 weights are two bytes each (two byte-planes in tandem), so an
        fp16 tile takes twice the stream cycles of an int8 tile.
        """
        total = self.rows * self.cols * self.dtype.n_bytes
        per_cycle = self.n_streams * lanes
        return -(-total // per_cycle)  # ceil division


@register_instruction
@dataclass(frozen=True)
class ActivationBufferControl(Instruction):
    """``ABC`` — initiate and coordinate arriving activations.

    Streams ``n_vectors`` consecutive activation vectors (one per cycle)
    from the aligned stream group at ``base_stream`` into the selected
    plane.  int8 activations ride one stream; fp16 rides an aligned pair.
    """

    mnemonic: ClassVar[str] = "ABC"
    slice_kinds: ClassVar[frozenset[SliceKind]] = MXM_ONLY
    description: ClassVar[str] = (
        "Activation buffer control (ABC) to initiate and coordinate "
        "arriving activations"
    )

    plane: int = 0
    base_stream: int = 0
    direction: Direction = Direction.EASTWARD
    n_vectors: int = 1
    dtype: DType = DType.INT8

    def __post_init__(self) -> None:
        _check_plane(self.plane)
        if self.n_vectors < 1:
            raise IsaError("ABC must stream at least one vector")
        if self.dtype not in (DType.INT8, DType.FP16):
            raise IsaError(
                f"MXM accepts int8 or fp16 activations, not {self.dtype.label}"
            )


@register_instruction
@dataclass(frozen=True)
class Accumulate(Instruction):
    """``ACC`` — drain int32/fp32 results from a plane onto streams.

    Each result vector occupies an aligned quad-stream group (int32/fp32 are
    four streams).  With ``accumulate`` set, consecutive results are summed
    into the plane's accumulators instead of being emitted per vector — used
    when a dot product spans multiple K-tiles.
    """

    mnemonic: ClassVar[str] = "ACC"
    slice_kinds: ClassVar[frozenset[SliceKind]] = MXM_ONLY
    description: ClassVar[str] = (
        "Accumulate (ACC) either INT32 or FP32 result from MXM"
    )

    plane: int = 0
    base_stream: int = 0
    direction: Direction = Direction.WESTWARD
    n_vectors: int = 1
    out_dtype: DType = DType.INT32
    accumulate: bool = False
    #: When False, results are folded into the plane's accumulators without
    #: being driven onto streams — the non-final passes of a K-tiled matmul.
    emit: bool = True

    def __post_init__(self) -> None:
        _check_plane(self.plane)
        if self.out_dtype not in (DType.INT32, DType.FP32):
            raise IsaError(
                f"MXM accumulates to int32 or fp32, not {self.out_dtype.label}"
            )
        if self.base_stream % 4 != 0:
            raise IsaError(
                "ACC results occupy an aligned quad-stream group; "
                f"stream {self.base_stream} is not SG4-aligned"
            )
