"""The TSP instruction set (Table I of the paper).

Importing this package registers every instruction class; the registry in
:mod:`repro.isa.base` is the single source of truth used by the encoder, the
simulator dispatch tables, and the Table I reproduction bench.
"""

from .base import (
    INSTRUCTION_REGISTRY,
    Instruction,
    instructions_for_slice,
    iter_instruction_classes,
)
from .icu import Config, Ifetch, Nop, Notify, Repeat, Sync
from .mem import Gather, Read, Scatter, Write
from .vxm import AluOp, BinaryOp, Convert, UnaryOp
from .mxm import (
    Accumulate,
    ActivationBufferControl,
    InstallWeights,
    LoadWeights,
)
from .sxm import (
    Distribute,
    Permute,
    Rotate,
    Select,
    Shift,
    ShiftDirection,
    Transpose,
)
from .assembler import (
    parse_instruction,
    parse_program,
    render_instruction,
    render_program,
)
from .c2c import Deskew, Receive, Send
from .encoding import (
    decode,
    decode_program_text,
    encode,
    encode_program_text,
)
from .program import MXM_UNITS, SXM_UNITS, IcuId, Program, all_icu_ids

__all__ = [
    "Accumulate",
    "ActivationBufferControl",
    "AluOp",
    "BinaryOp",
    "Config",
    "Convert",
    "Deskew",
    "Distribute",
    "Gather",
    "INSTRUCTION_REGISTRY",
    "IcuId",
    "Ifetch",
    "InstallWeights",
    "Instruction",
    "LoadWeights",
    "MXM_UNITS",
    "Nop",
    "Notify",
    "Permute",
    "Program",
    "Read",
    "Receive",
    "Repeat",
    "Rotate",
    "SXM_UNITS",
    "Scatter",
    "Select",
    "Send",
    "Shift",
    "ShiftDirection",
    "Sync",
    "Transpose",
    "UnaryOp",
    "Write",
    "all_icu_ids",
    "decode",
    "parse_instruction",
    "parse_program",
    "render_instruction",
    "render_program",
    "decode_program_text",
    "encode",
    "encode_program_text",
    "instructions_for_slice",
    "iter_instruction_classes",
]
