"""Binary instruction encoding.

The program text stored in MEM "instruction dispatch" slices and fetched by
``Ifetch`` is a byte stream; this module defines the wire format and a
round-trippable encoder/decoder for every registered instruction.

Format (little-endian)::

    +--------+----------------+----------- ... -----------+
    | opcode | total length   | fields in dataclass order |
    | 1 byte | 2 bytes        |                           |
    +--------+----------------+----------- ... -----------+

Field encodings are chosen by the type of the field's default value:

* int   -> 4-byte signed
* bool  -> 1 byte
* float -> 8-byte IEEE double
* enum  -> 1-byte index into the enum's member order
* tuple -> 2-byte count, then 2-byte signed entries
"""

from __future__ import annotations

import enum
import struct
from dataclasses import fields

from ..errors import EncodingError
from .base import INSTRUCTION_REGISTRY, OPCODE_BY_MNEMONIC, Instruction

_HEADER = struct.Struct("<BH")
_INT = struct.Struct("<H")  # scalar fields are compact 16-bit unsigned
_FLOAT = struct.Struct("<d")
_SHORT = struct.Struct("<h")
_COUNT = struct.Struct("<H")


def _class_by_opcode(opcode: int) -> type[Instruction]:
    for mnemonic, code in OPCODE_BY_MNEMONIC.items():
        if code == opcode:
            return INSTRUCTION_REGISTRY[mnemonic]
    raise EncodingError(f"unknown opcode {opcode}")


def _encode_field(value: object) -> bytes:
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return bytes([1 if value else 0])
    if isinstance(value, enum.Enum):
        members = list(type(value))
        return bytes([members.index(value)])
    if isinstance(value, int):
        if not 0 <= value <= 0xFFFF:
            raise EncodingError(
                f"scalar field value {value} outside the 16-bit range"
            )
        return _INT.pack(value)
    if isinstance(value, float):
        return _FLOAT.pack(value)
    if isinstance(value, tuple):
        out = [_COUNT.pack(len(value))]
        out += [_SHORT.pack(int(v)) for v in value]
        return b"".join(out)
    raise EncodingError(f"cannot encode field value {value!r}")


def _decode_field(
    default: object, data: bytes, offset: int
) -> tuple[object, int]:
    if isinstance(default, bool):
        return data[offset] != 0, offset + 1
    if isinstance(default, enum.Enum):
        members = list(type(default))
        index = data[offset]
        if index >= len(members):
            raise EncodingError(
                f"enum index {index} out of range for {type(default).__name__}"
            )
        return members[index], offset + 1
    if isinstance(default, int):
        (value,) = _INT.unpack_from(data, offset)
        return value, offset + _INT.size
    if isinstance(default, float):
        (value,) = _FLOAT.unpack_from(data, offset)
        return value, offset + _FLOAT.size
    if isinstance(default, tuple):
        (count,) = _COUNT.unpack_from(data, offset)
        offset += _COUNT.size
        values = []
        for _ in range(count):
            (v,) = _SHORT.unpack_from(data, offset)
            values.append(v)
            offset += _SHORT.size
        return tuple(values), offset
    raise EncodingError(f"cannot decode field with default {default!r}")


def encode(instruction: Instruction) -> bytes:
    """Serialize one instruction to its wire format."""
    body = b"".join(
        _encode_field(getattr(instruction, f.name))
        for f in fields(instruction)
    )
    total = _HEADER.size + len(body)
    if total > 0xFFFF:
        raise EncodingError(
            f"{instruction.mnemonic} encodes to {total} bytes (> 64 KiB)"
        )
    return _HEADER.pack(instruction.opcode, total) + body


def decode(data: bytes, offset: int = 0) -> tuple[Instruction, int]:
    """Deserialize one instruction; returns (instruction, next offset)."""
    if offset + _HEADER.size > len(data):
        raise EncodingError("truncated instruction header")
    opcode, total = _HEADER.unpack_from(data, offset)
    cls = _class_by_opcode(opcode)
    end = offset + total
    if end > len(data):
        raise EncodingError(
            f"truncated {cls.mnemonic} body: need {total} bytes"
        )
    cursor = offset + _HEADER.size
    kwargs: dict[str, object] = {}
    for f in fields(cls):
        default = f.default
        value, cursor = _decode_field(default, data, cursor)
        kwargs[f.name] = value
    if cursor != end:
        raise EncodingError(
            f"{cls.mnemonic} decoded {cursor - offset} bytes, header said "
            f"{total}"
        )
    return cls(**kwargs), end


def encode_program_text(instructions: list[Instruction]) -> bytes:
    """Concatenate instruction encodings into IQ-fetchable program text."""
    return b"".join(encode(i) for i in instructions)


def decode_program_text(data: bytes) -> list[Instruction]:
    """Inverse of :func:`encode_program_text`."""
    out: list[Instruction] = []
    offset = 0
    while offset < len(data):
        instruction, offset = decode(data, offset)
        out.append(instruction)
    return out
