"""ICU-common instructions: NOP, Ifetch, Sync, Notify, Config, Repeat.

These are available on every functional slice (each slice has an ICU tile;
Section III-A).  They implement the three mechanisms the compiler relies on
for deterministic execution: cycle-precise delay (``NOP n``), chip-wide
barrier synchronization (``Sync``/``Notify``), and self-sustaining
instruction supply (``Ifetch``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..arch.geometry import SliceKind
from ..errors import IsaError
from .base import Instruction, register_instruction

ALL_SLICES: frozenset[SliceKind] = frozenset(SliceKind)


@register_instruction
@dataclass(frozen=True)
class Nop(Instruction):
    """``NOP N`` — delay instruction flow by exactly N cycles.

    The repeat count is a 16-bit field, so one NOP can wait up to 65,535
    cycles (~65 us at 1 GHz).  The compiler inserts NOPs implicitly to
    control the relative timing of slices and data.
    """

    mnemonic: ClassVar[str] = "NOP"
    slice_kinds: ClassVar[frozenset[SliceKind]] = ALL_SLICES
    description: ClassVar[str] = (
        "No-operation, can be repeated N times to delay by N cycles"
    )

    count: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.count <= 0xFFFF:
            raise IsaError(
                f"NOP repeat count must be 1..65535, got {self.count}"
            )

    def issue_cycles(self) -> int:
        return self.count


@register_instruction
@dataclass(frozen=True)
class Ifetch(Instruction):
    """``Ifetch`` — fetch 640 bytes of instruction text onto this IQ.

    The operand stream carries the program text (a pair of 320-byte
    vectors); the compiler prefetches omnisciently so that queues never run
    dry (Section III-A3).
    """

    mnemonic: ClassVar[str] = "Ifetch"
    slice_kinds: ClassVar[frozenset[SliceKind]] = ALL_SLICES
    description: ClassVar[str] = (
        "Fetch instructions from streams or local memory"
    )

    stream: int = 0


@register_instruction
@dataclass(frozen=True)
class Sync(Instruction):
    """``Sync`` — park at the head of the IQ awaiting barrier notification."""

    mnemonic: ClassVar[str] = "Sync"
    slice_kinds: ClassVar[frozenset[SliceKind]] = ALL_SLICES
    description: ClassVar[str] = (
        "Parks at the head of the instruction dispatch queue to await "
        "barrier notification"
    )


@register_instruction
@dataclass(frozen=True)
class Notify(Instruction):
    """``Notify`` — release all parked Syncs, resuming instruction flow.

    Exactly one IQ is designated the notifier; the broadcast reaches every
    IQ within the chip-wide barrier latency (35 cycles on the full chip).
    """

    mnemonic: ClassVar[str] = "Notify"
    slice_kinds: ClassVar[frozenset[SliceKind]] = ALL_SLICES
    description: ClassVar[str] = (
        "Releases the pending barrier operations causing instruction flow "
        "to resume"
    )


@register_instruction
@dataclass(frozen=True)
class Config(Instruction):
    """``Config`` — power a superlane up or down (Section II-F).

    Powering down unused superlanes shortens the effective vector length in
    16-lane steps and yields a more energy-proportional chip.
    """

    mnemonic: ClassVar[str] = "Config"
    slice_kinds: ClassVar[frozenset[SliceKind]] = ALL_SLICES
    description: ClassVar[str] = "Configure low-power mode"

    superlane: int = 0
    power_on: bool = True


@register_instruction
@dataclass(frozen=True)
class Repeat(Instruction):
    """``Repeat n, d`` — repeat the previous instruction n times, d apart."""

    mnemonic: ClassVar[str] = "Repeat"
    slice_kinds: ClassVar[frozenset[SliceKind]] = ALL_SLICES
    description: ClassVar[str] = (
        "Repeat the previous instruction n times, with d cycles between "
        "iterations"
    )

    n: int = 1
    d: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise IsaError(f"Repeat count must be positive, got {self.n}")
        if self.d < 1:
            raise IsaError(f"Repeat period must be positive, got {self.d}")

    def issue_cycles(self) -> int:
        return self.n * self.d
