"""C2C (chip-to-chip) instructions: Deskew, Send, Receive.

Sixteen x4 links at 30 Gb/s per lane give 3.84 Tb/s of off-chip bandwidth
(Section II item 6).  ``Send`` ships a 320-byte vector out a link;
``Receive`` emplaces an arriving vector into main memory; ``Deskew`` manages
skew across the plesiochronous links so that multi-chip systems preserve
the deterministic timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..arch.geometry import Direction, SliceKind
from ..errors import IsaError
from .base import Instruction, register_instruction

C2C_ONLY: frozenset[SliceKind] = frozenset({SliceKind.C2C})


def _check_link(link: int, n_links: int = 16) -> None:
    if not 0 <= link < n_links:
        raise IsaError(f"link {link} outside 0..{n_links - 1}")


@register_instruction
@dataclass(frozen=True)
class Deskew(Instruction):
    """``Deskew`` — align a plesiochronous link to the core clock domain."""

    mnemonic: ClassVar[str] = "Deskew"
    slice_kinds: ClassVar[frozenset[SliceKind]] = C2C_ONLY
    description: ClassVar[str] = "Manage skew across plesiochronous links"

    link: int = 0

    def __post_init__(self) -> None:
        _check_link(self.link)


@register_instruction
@dataclass(frozen=True)
class Send(Instruction):
    """``Send`` — transmit a 320-byte vector from a stream out a link."""

    mnemonic: ClassVar[str] = "Send"
    slice_kinds: ClassVar[frozenset[SliceKind]] = C2C_ONLY
    description: ClassVar[str] = "Send a 320-byte vector"

    link: int = 0
    stream: int = 0
    direction: Direction = Direction.EASTWARD

    def __post_init__(self) -> None:
        _check_link(self.link)


@register_instruction
@dataclass(frozen=True)
class Receive(Instruction):
    """``Receive`` — accept a vector from a link, emplacing it in memory.

    The landing address names a word in the adjacent hemisphere's MEM; the
    C2C module owns a lightweight DMA engine for model emplacement and
    bootstrapping (Section II item 6).
    """

    mnemonic: ClassVar[str] = "Receive"
    slice_kinds: ClassVar[frozenset[SliceKind]] = C2C_ONLY
    description: ClassVar[str] = (
        "Receive a 320-byte vector, emplacing it in main memory"
    )

    link: int = 0
    mem_slice: int = 0
    address: int = 0

    def __post_init__(self) -> None:
        _check_link(self.link)
        if self.address < 0:
            raise IsaError("receive address must be non-negative")
