"""Program representation: one instruction queue per ICU.

The compiler has explicit control of program order in each of the chip's 144
independent instruction queues (Section II).  A :class:`Program` maps each
:class:`IcuId` to its ordered instruction list; the simulator dispatches each
queue independently, and the assembly listing regenerates the kind of
schedule shown in the paper's Figure 11.

ICU decomposition (DESIGN.md section 3): one queue per MEM slice (88); 16
VXM queues (one per ALU mesh slot); 8 MXM queues (4 planes x {weight,
activation} queues); 16 SXM queues (8 functional units per hemisphere); 16
C2C queues (one per link) — 144 total on the full chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.geometry import Floorplan, Hemisphere, SliceAddress, SliceKind
from ..config import ArchConfig
from ..errors import IsaError
from .base import Instruction

#: SXM functional units, each with its own instruction queue.
SXM_UNITS = (
    "shift_n",
    "shift_s",
    "select",
    "permute",
    "distribute",
    "rotate",
    "transpose0",
    "transpose1",
)
#: MXM queues per plane: one feeding weights, one driving activations/results.
MXM_UNITS = ("weights", "compute")


@dataclass(frozen=True)
class IcuId:
    """Identity of one independent instruction queue.

    ``unit`` distinguishes queues within a slice: the VXM ALU slot (0..15),
    the MXM plane queue (``plane*2 + {0=weights, 1=compute}``), the SXM
    functional unit (index into :data:`SXM_UNITS`), or the C2C link.
    MEM slices have a single queue (unit 0).
    """

    address: SliceAddress
    unit: int = 0

    def __str__(self) -> str:
        if self.address.kind is SliceKind.MEM:
            return str(self.address)
        if self.address.kind is SliceKind.VXM:
            return f"VXM.alu{self.unit}"
        if self.address.kind is SliceKind.SXM:
            return f"{self.address}.{SXM_UNITS[self.unit]}"
        if self.address.kind is SliceKind.MXM:
            plane, queue = divmod(self.unit, 2)
            return f"{self.address}.plane{plane}.{MXM_UNITS[queue]}"
        return f"{self.address}.link{self.unit}"

    def sort_key(self) -> tuple:
        hem = "" if self.address.hemisphere is None else (
            self.address.hemisphere.value
        )
        return (self.address.kind.value, hem, self.address.index, self.unit)


def all_icu_ids(config: ArchConfig, floorplan: Floorplan) -> list[IcuId]:
    """Every independent instruction queue on the chip (144 on the full TSP)."""
    ids: list[IcuId] = []
    for mem in floorplan.mem_slices():
        ids.append(IcuId(mem, 0))
    for alu in range(16):
        ids.append(IcuId(floorplan.vxm(), alu))
    for hemisphere in (Hemisphere.WEST, Hemisphere.EAST):
        for unit in range(2 * len(MXM_UNITS)):  # 2 planes x 2 queues
            ids.append(IcuId(floorplan.mxm(hemisphere), unit))
        for unit in range(len(SXM_UNITS)):
            ids.append(IcuId(floorplan.sxm(hemisphere), unit))
        for link in range(config.c2c_links // config.hemispheres):
            ids.append(IcuId(floorplan.c2c(hemisphere), link))
    return ids


class Program:
    """Per-ICU instruction queues plus compiler bookkeeping."""

    def __init__(self) -> None:
        self._queues: dict[IcuId, list[Instruction]] = {}
        #: optional human annotations keyed by (icu, instruction index)
        self.annotations: dict[tuple[IcuId, int], str] = {}

    # ------------------------------------------------------------------
    def add(
        self, icu: IcuId, instruction: Instruction, note: str | None = None
    ) -> None:
        """Append one instruction to an ICU's queue."""
        if (
            instruction.slice_kinds
            and icu.address.kind not in instruction.slice_kinds
        ):
            raise IsaError(
                f"{instruction.mnemonic} cannot execute on a "
                f"{icu.address.kind.value} slice"
            )
        queue = self._queues.setdefault(icu, [])
        if note is not None:
            self.annotations[(icu, len(queue))] = note
        queue.append(instruction)

    def extend(self, icu: IcuId, instructions: list[Instruction]) -> None:
        for instruction in instructions:
            self.add(icu, instruction)

    # ------------------------------------------------------------------
    def queue(self, icu: IcuId) -> list[Instruction]:
        """The (possibly empty) instruction list for an ICU."""
        return self._queues.get(icu, [])

    @property
    def icus(self) -> list[IcuId]:
        """ICUs with at least one instruction, in deterministic order."""
        return sorted(self._queues, key=IcuId.sort_key)

    def n_instructions(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def text_bytes(self) -> int:
        """Total program-text size across all queues."""
        return sum(
            instruction.encoded_size()
            for queue in self._queues.values()
            for instruction in queue
        )

    def dispatch_length(self, icu: IcuId) -> int:
        """Cycles the queue occupies the dispatcher (NOPs count in full)."""
        return sum(i.issue_cycles() for i in self.queue(icu))

    def makespan_lower_bound(self) -> int:
        """Longest single-queue dispatch length — a floor on execution time."""
        if not self._queues:
            return 0
        return max(self.dispatch_length(icu) for icu in self._queues)

    # ------------------------------------------------------------------
    def listing(self, max_width: int = 100) -> str:
        """Human-readable assembly listing, one section per ICU."""
        lines: list[str] = []
        for icu in self.icus:
            lines.append(f"{icu}:")
            cycle = 0
            for index, instruction in enumerate(self.queue(icu)):
                note = self.annotations.get((icu, index), "")
                suffix = f"  ; {note}" if note else ""
                text = f"  t+{cycle:<6} {instruction}{suffix}"
                if len(text) > max_width:
                    text = text[: max_width - 3] + "..."
                lines.append(text)
                cycle += instruction.issue_cycles()
            lines.append("")
        return "\n".join(lines)

    def __len__(self) -> int:
        return self.n_instructions()
