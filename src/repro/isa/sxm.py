"""SXM (switch execution module) instructions.

The SXM performs all inter-lane data movement — the Y dimension of the
on-chip network: lane shifts with North/South select, full-width bijective
permutation, per-superlane distribution (remap / replicate / zero-fill),
rotation generation for convolution stencils, and the 16x16 stream
transpose (Section III-E).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import ClassVar

from ..arch.geometry import Direction, SliceKind
from ..errors import IsaError
from .base import Instruction, register_instruction

SXM_ONLY: frozenset[SliceKind] = frozenset({SliceKind.SXM})


class ShiftDirection(enum.Enum):
    """Lane-shift direction: North moves toward lane 0."""

    NORTH = "N"
    SOUTH = "S"


@register_instruction
@dataclass(frozen=True)
class Shift(Instruction):
    """``Shift up/down N`` — lane-shift a stream by N lanes.

    Vacated lanes are zero-filled; the compiler pairs North and South shifts
    with a :class:`Select` to build windowed operations (Figure 8).
    """

    mnemonic: ClassVar[str] = "Shift"
    slice_kinds: ClassVar[frozenset[SliceKind]] = SXM_ONLY
    description: ClassVar[str] = (
        "Lane-shift streams up/down by N lanes, and Select between "
        "North/South shifted vectors"
    )

    src_stream: int = 0
    dst_stream: int = 0
    direction: Direction = Direction.EASTWARD
    dst_direction: Direction = Direction.EASTWARD
    shift: ShiftDirection = ShiftDirection.NORTH
    amount: int = 1

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise IsaError(f"shift amount must be >= 0, got {self.amount}")


@register_instruction
@dataclass(frozen=True)
class Select(Instruction):
    """Per-lane select between two shifted streams.

    ``mask`` is a 320-entry 0/1 payload choosing, per lane, the first or the
    second source — the "Select between North/South shifted vectors" half of
    the Shift row in Table I.
    """

    mnemonic: ClassVar[str] = "Select"
    slice_kinds: ClassVar[frozenset[SliceKind]] = SXM_ONLY
    description: ClassVar[str] = (
        "Select lanes between two (e.g. North/South shifted) streams"
    )

    src_stream_a: int = 0
    src_stream_b: int = 1
    dst_stream: int = 0
    direction: Direction = Direction.EASTWARD
    dst_direction: Direction = Direction.EASTWARD
    mask: tuple[int, ...] = ()

    def payload(self) -> bytes:
        return bytes(self.mask)


@register_instruction
@dataclass(frozen=True)
class Permute(Instruction):
    """``Permute map`` — bijective remap of all 320 lanes.

    ``mapping[i]`` names the source lane whose value lands in output lane
    ``i``; the mapping must be a bijection over the lane count.
    """

    mnemonic: ClassVar[str] = "Permute"
    slice_kinds: ClassVar[frozenset[SliceKind]] = SXM_ONLY
    description: ClassVar[str] = "Bijective permute of 320 inputs to outputs"

    src_stream: int = 0
    dst_stream: int = 0
    direction: Direction = Direction.EASTWARD
    dst_direction: Direction = Direction.EASTWARD
    mapping: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.mapping and sorted(self.mapping) != list(
            range(len(self.mapping))
        ):
            raise IsaError("Permute mapping must be a bijection over lanes")

    def payload(self) -> bytes:
        # lane indices can exceed 255 only on hypothetical >256-lane chips
        return b"".join(i.to_bytes(2, "little") for i in self.mapping)


@register_instruction
@dataclass(frozen=True)
class Distribute(Instruction):
    """``Distribute map`` — remap / replicate / zero-fill within a superlane.

    ``mapping`` has one entry per lane of a superlane (16); entry -1 means
    zero-fill, otherwise the value of the named source lane (0..15) is
    replicated into that output lane.  The same map applies to every
    superlane — the efficient mechanism for zero padding or rearranging a
    4x4 filter (Section III-E).
    """

    mnemonic: ClassVar[str] = "Distribute"
    slice_kinds: ClassVar[frozenset[SliceKind]] = SXM_ONLY
    description: ClassVar[str] = (
        "Rearrange or replicate data within a superlane (16 lanes)"
    )

    src_stream: int = 0
    dst_stream: int = 0
    direction: Direction = Direction.EASTWARD
    dst_direction: Direction = Direction.EASTWARD
    mapping: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for entry in self.mapping:
            if entry != -1 and not 0 <= entry < 16:
                raise IsaError(
                    f"Distribute map entries are -1 (zero) or 0..15, got "
                    f"{entry}"
                )

    def payload(self) -> bytes:
        return bytes((e & 0xFF) for e in self.mapping)


@register_instruction
@dataclass(frozen=True)
class Rotate(Instruction):
    """``Rotate stream`` — generate all n^2 rotations of n x n input data.

    Used for convolution stencils: an n x n patch (n = 3 or 4) on the input
    stream yields n^2 output streams, each a distinct rotation, starting at
    ``dst_base_stream``.
    """

    mnemonic: ClassVar[str] = "Rotate"
    slice_kinds: ClassVar[frozenset[SliceKind]] = SXM_ONLY
    description: ClassVar[str] = (
        "Rotate n x n input data to generate n^2 output streams with all "
        "possible rotations (n=3 or n=4)"
    )

    src_stream: int = 0
    dst_base_stream: int = 0
    direction: Direction = Direction.EASTWARD
    dst_direction: Direction = Direction.EASTWARD
    n: int = 3

    def __post_init__(self) -> None:
        if self.n not in (3, 4):
            raise IsaError(f"Rotate supports n=3 or n=4, got {self.n}")


@register_instruction
@dataclass(frozen=True)
class Transpose(Instruction):
    """``Transpose sg16`` — 16x16 transpose across a 16-stream group.

    Takes 16 incoming streams and produces 16 output streams with rows and
    columns interchanged, per superlane.  Each SXM can issue two transposes
    simultaneously (four chip-wide).
    """

    mnemonic: ClassVar[str] = "Transpose"
    slice_kinds: ClassVar[frozenset[SliceKind]] = SXM_ONLY
    description: ClassVar[str] = (
        "Transpose 16x16 elements producing 16 output streams with rows "
        "and columns interchanged"
    )

    src_base_stream: int = 0
    dst_base_stream: int = 0
    direction: Direction = Direction.EASTWARD
    dst_direction: Direction = Direction.EASTWARD
    unit: int = 0

    def __post_init__(self) -> None:
        if self.src_base_stream % 16 != 0 or self.dst_base_stream % 16 != 0:
            raise IsaError("Transpose stream groups must be 16-aligned")
        if self.unit not in (0, 1):
            raise IsaError(
                f"each SXM has two transpose units (0 or 1), got {self.unit}"
            )
