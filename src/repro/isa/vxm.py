"""VXM (vector execution module) instructions.

Each superlane implements a 4x4 mesh of vector ALUs (16 per lane, 5,120
chip-wide).  ALUs are stateless — no condition codes — and instead provide
saturating and modulo variants of add/multiply (Section III-C).  Two or more
ALUs within a lane can be *chained* so intermediate results never visit
memory; the ``alu`` field selects which mesh slot executes an operation, and
the compiler chains by routing one op's destination stream into the next
op's source within the VXM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar

from ..arch.geometry import Direction, SliceKind
from ..arch.streams import DType
from ..errors import IsaError
from .base import Instruction, register_instruction

VXM_ONLY: frozenset[SliceKind] = frozenset({SliceKind.VXM})


class AluOp(enum.Enum):
    """Vector-ALU operations (Table I rows for the VXM)."""

    # unary
    COPY = ("copy", 1)
    NEGATE = ("negate", 1)
    ABS = ("abs", 1)
    MASK = ("mask", 1)
    RELU = ("relu", 1)
    TANH = ("tanh", 1)
    EXP = ("exp", 1)
    RSQRT = ("rsqrt", 1)
    # binary, saturating and modulo variants (Section III-C)
    ADD_SAT = ("add_sat", 2)
    ADD_MOD = ("add_mod", 2)
    SUB_SAT = ("sub_sat", 2)
    SUB_MOD = ("sub_mod", 2)
    MUL_SAT = ("mul_sat", 2)
    MUL_MOD = ("mul_mod", 2)
    MAX = ("max", 2)
    MIN = ("min", 2)

    def __init__(self, label: str, arity: int) -> None:
        self.label = label
        self.arity = arity


#: AluOp -> timing-table mnemonic (activations have longer pipelines).
_TIMING_KEYS = {
    AluOp.RELU: "ReLU",
    AluOp.TANH: "TanH",
    AluOp.EXP: "Exp",
    AluOp.RSQRT: "RSqrt",
}


def _check_alu(alu: int) -> None:
    if not 0 <= alu < 16:
        raise IsaError(f"ALU index {alu} outside the 4x4 mesh (0..15)")


@register_instruction
@dataclass(frozen=True)
class UnaryOp(Instruction):
    """``z = op x`` — point-wise operation on one stream operand."""

    mnemonic: ClassVar[str] = "UnaryOp"
    slice_kinds: ClassVar[frozenset[SliceKind]] = VXM_ONLY
    description: ClassVar[str] = (
        "z = op x point-wise operation on 1 operand, x, producing 1 "
        "result, z (eg. mask, negate)"
    )

    op: AluOp = AluOp.COPY
    src_stream: int = 0
    src_direction: Direction = Direction.EASTWARD
    dst_stream: int = 0
    dst_direction: Direction = Direction.EASTWARD
    dtype: DType = DType.INT8
    alu: int = 0

    def __post_init__(self) -> None:
        if self.op.arity != 1:
            raise IsaError(f"{self.op.label} is not a unary operation")
        _check_alu(self.alu)

    @property
    def timing_mnemonic(self) -> str:
        return _TIMING_KEYS.get(self.op, "UnaryOp")


@register_instruction
@dataclass(frozen=True)
class BinaryOp(Instruction):
    """``z = x op y`` — point-wise operation on two stream operands."""

    mnemonic: ClassVar[str] = "BinaryOp"
    slice_kinds: ClassVar[frozenset[SliceKind]] = VXM_ONLY
    description: ClassVar[str] = (
        "z = x op y point-wise operations with 2 operands x and y "
        "producing 1 result, z (e.g. add, mul, sub)"
    )

    op: AluOp = AluOp.ADD_SAT
    src1_stream: int = 0
    src1_direction: Direction = Direction.EASTWARD
    src2_stream: int = 1
    src2_direction: Direction = Direction.EASTWARD
    dst_stream: int = 2
    dst_direction: Direction = Direction.EASTWARD
    dtype: DType = DType.INT8
    alu: int = 0

    def __post_init__(self) -> None:
        if self.op.arity != 2:
            raise IsaError(f"{self.op.label} is not a binary operation")
        _check_alu(self.alu)

    @property
    def timing_mnemonic(self) -> str:
        return "BinaryOp"


@register_instruction
@dataclass(frozen=True)
class Convert(Instruction):
    """Type conversion, including the requantization used after the MXM.

    ``scale`` supports quantize/dequantize conversions: converting int32 to
    int8 multiplies by ``scale`` before rounding and saturating (the
    ResNet50 requantization step, Section IV); converting int8 to fp32
    multiplies after widening.
    """

    mnemonic: ClassVar[str] = "Convert"
    slice_kinds: ClassVar[frozenset[SliceKind]] = VXM_ONLY
    description: ClassVar[str] = (
        "Converting fixed point to floating point, and vice versa"
    )

    src_stream: int = 0
    src_direction: Direction = Direction.EASTWARD
    dst_stream: int = 0
    dst_direction: Direction = Direction.EASTWARD
    from_dtype: DType = DType.INT32
    to_dtype: DType = DType.INT8
    scale: float = 1.0
    alu: int = 0

    def __post_init__(self) -> None:
        _check_alu(self.alu)

    @property
    def timing_mnemonic(self) -> str:
        return "Convert"
