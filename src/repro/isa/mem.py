"""MEM-slice instructions: Read, Write, Gather, Scatter.

Memory semantics carry both an address and a dataflow direction (Section
I-B): a ``Read`` loads a 320-byte vector from SRAM onto a stream flowing
East or West, and a ``Write`` captures a passing stream into SRAM.  The
bank bit of the 13-bit word address is architecturally exposed so the
compiler can schedule the pseudo-dual-port SRAM (one read and one write per
cycle when they target opposite banks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..arch.geometry import Direction, SliceKind
from ..errors import IsaError
from .base import Instruction, register_instruction

MEM_ONLY: frozenset[SliceKind] = frozenset({SliceKind.MEM})


def _check_address(address: int, addr_bits: int = 13) -> None:
    if not 0 <= address < (1 << addr_bits):
        raise IsaError(
            f"address {address} outside the {addr_bits}-bit word space"
        )


@dataclass(frozen=True)
class MemInstruction(Instruction):
    """Common shape of MEM-slice data instructions."""

    slice_kinds: ClassVar[frozenset[SliceKind]] = MEM_ONLY

    def bank_of(self, address: int) -> int:
        """The SRAM bank an address falls in (the exposed bank bit)."""
        return address & 1


@register_instruction
@dataclass(frozen=True)
class Read(MemInstruction):
    """``Read a, s`` — load the vector at word address ``a`` onto stream ``s``.

    The stream begins flowing in ``direction`` from this slice's stream
    register after the instruction's functional delay.
    """

    mnemonic: ClassVar[str] = "Read"
    description: ClassVar[str] = "Load vector at address a onto stream s"

    address: int = 0
    stream: int = 0
    direction: Direction = Direction.EASTWARD

    def __post_init__(self) -> None:
        _check_address(self.address)

    @property
    def bank(self) -> int:
        return self.bank_of(self.address)


@register_instruction
@dataclass(frozen=True)
class Write(MemInstruction):
    """``Write a, s`` — capture stream ``s`` into word address ``a``.

    The sampled value is the one present at this slice's stream register at
    dispatch time plus the instruction's operand skew.
    """

    mnemonic: ClassVar[str] = "Write"
    description: ClassVar[str] = (
        "Store stream s register contents into main memory address a"
    )

    address: int = 0
    stream: int = 0
    direction: Direction = Direction.EASTWARD

    def __post_init__(self) -> None:
        _check_address(self.address)

    @property
    def bank(self) -> int:
        return self.bank_of(self.address)


@register_instruction
@dataclass(frozen=True)
class Gather(MemInstruction):
    """``Gather s, map`` — indirect read through an address-map stream.

    Each lane's address comes from the ``map_stream`` value (stream-indirect
    addressing, Section III-B); the data lands on stream ``stream``.
    """

    mnemonic: ClassVar[str] = "Gather"
    description: ClassVar[str] = (
        "Indirectly read addresses pointed to by map putting onto stream s"
    )

    stream: int = 0
    map_stream: int = 1
    direction: Direction = Direction.EASTWARD
    #: direction the *map* stream flows (the result leaves on ``direction``)
    map_direction: Direction = Direction.EASTWARD
    #: The map stream carries one byte per lane: a word offset added to
    #: ``base`` to form each lane's effective address.
    base: int = 0

    def __post_init__(self) -> None:
        _check_address(self.base)


@register_instruction
@dataclass(frozen=True)
class Scatter(MemInstruction):
    """``Scatter s, map`` — indirect store through an address-map stream."""

    mnemonic: ClassVar[str] = "Scatter"
    description: ClassVar[str] = (
        "Indirectly store stream s into address in the map stream"
    )

    stream: int = 0
    map_stream: int = 1
    direction: Direction = Direction.EASTWARD
    #: Word offset base, as for :class:`Gather`.
    base: int = 0

    def __post_init__(self) -> None:
        _check_address(self.base)
