"""Instruction base classes and the ISA registry.

Instructions are immutable dataclasses carrying only architectural fields —
their execution semantics live in :mod:`repro.sim`, and their scheduling
metadata (``d_func``/``d_skew``) in :mod:`repro.arch.timing`.  Every concrete
instruction registers itself by mnemonic so Table I can be regenerated from
the registry and the binary encoder can round-trip any instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Iterator

from ..arch.geometry import SliceKind
from ..arch.timing import TimingModel
from ..errors import IsaError

#: mnemonic -> instruction class
INSTRUCTION_REGISTRY: dict[str, type["Instruction"]] = {}
#: mnemonic -> stable opcode number (order of registration)
OPCODE_BY_MNEMONIC: dict[str, int] = {}


def register_instruction(cls: type["Instruction"]) -> type["Instruction"]:
    """Class decorator adding an instruction to the global registry."""
    mnemonic = cls.mnemonic
    if not mnemonic:
        raise IsaError(f"{cls.__name__} lacks a mnemonic")
    if mnemonic in INSTRUCTION_REGISTRY:
        raise IsaError(f"duplicate mnemonic {mnemonic!r}")
    INSTRUCTION_REGISTRY[mnemonic] = cls
    OPCODE_BY_MNEMONIC[mnemonic] = len(OPCODE_BY_MNEMONIC)
    return cls


@dataclass(frozen=True)
class Instruction:
    """Base class for every TSP instruction.

    Class attributes:

    * ``mnemonic`` — the Table I name.
    * ``slice_kinds`` — which functional-slice families may execute it.
      ICU-common instructions (NOP, Ifetch, Sync, Notify, Config, Repeat)
      are valid on every slice because every slice has an ICU tile.
    * ``description`` — the Table I description, used to regenerate the
      table.
    """

    mnemonic: ClassVar[str] = ""
    slice_kinds: ClassVar[frozenset[SliceKind]] = frozenset()
    description: ClassVar[str] = ""

    @property
    def opcode(self) -> int:
        return OPCODE_BY_MNEMONIC[self.mnemonic]

    # -- timing ---------------------------------------------------------
    @property
    def timing_mnemonic(self) -> str:
        """Key into the timing tables (subclasses of a family share one)."""
        return self.mnemonic

    def dfunc(self, timing: TimingModel) -> int:
        """Functional delay: dispatch to result-on-stream (Section III)."""
        return timing.functional_delay(self.timing_mnemonic)

    def dskew(self, timing: TimingModel) -> int:
        """Operand skew: dispatch to operand-sampling time (Section III)."""
        return timing.operand_skew(self.timing_mnemonic)

    # -- occupancy ------------------------------------------------------
    def issue_cycles(self) -> int:
        """Dispatch slots this instruction occupies in its queue.

        Almost every instruction issues in one cycle; ``NOP n`` and
        ``Repeat n, d`` occupy the queue for their whole duration.
        """
        return 1

    def encoded_size(self) -> int:
        """Bytes of instruction text this occupies in the IQ.

        Used by the IFetch model: the compiler must refill 640-byte chunks
        fast enough that no queue runs dry.  Delegates to the wire encoder
        so occupancy matches the actual program text exactly.
        """
        from .encoding import encode  # local import to avoid a cycle

        return len(encode(self))

    def payload(self) -> bytes:
        """Variable-length payload (e.g. permutation maps)."""
        return b""

    # -- presentation ---------------------------------------------------
    def operands_str(self) -> str:
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            parts.append(f"{f.name}={value}")
        return ", ".join(parts)

    def __str__(self) -> str:
        ops = self.operands_str()
        return f"{self.mnemonic} {ops}" if ops else self.mnemonic


def instructions_for_slice(kind: SliceKind) -> list[type[Instruction]]:
    """All instruction classes executable on a slice family."""
    result = []
    for cls in INSTRUCTION_REGISTRY.values():
        if not cls.slice_kinds or kind in cls.slice_kinds:
            result.append(cls)
    return result


def iter_instruction_classes() -> Iterator[type[Instruction]]:
    yield from INSTRUCTION_REGISTRY.values()
