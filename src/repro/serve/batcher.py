"""Deadline-aware dynamic batching.

The TSP's deterministic execution makes batching purely a host-side
scheduling question: a compiled program for batch ``B`` always takes the
same cycles, so the only tradeoff is queueing delay vs chip amortization.
:class:`DynamicBatcher` keeps one FIFO per model and releases a
:class:`~repro.serve.request.Batch` when it fills to the model's
``max_batch`` or when its oldest request has waited ``max_delay_s`` —
whichever comes first.  Workers block in :meth:`next_batch`; all state
lives under one condition variable, so a worker death can never strand
requests (close() drains every queue as final batches).
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..errors import ServeError
from .request import Batch, BatchPolicy, InferenceRequest


class DynamicBatcher:
    """Per-model request queues with size- and deadline-triggered release."""

    def __init__(
        self,
        policies: dict[str, BatchPolicy] | None = None,
        default_policy: BatchPolicy | None = None,
        clock=time.monotonic,
    ) -> None:
        self._policies = dict(policies or {})
        self._default = default_policy or BatchPolicy()
        self._clock = clock
        self._queues: dict[str, deque[InferenceRequest]] = {}
        self._cond = threading.Condition()
        self._closed = False
        self._next_batch_id = 0
        #: high-water mark of total queued requests (obs export)
        self.depth_high = 0
        #: batches released, by trigger kind
        self.released: dict[str, int] = {"full": 0, "deadline": 0, "drain": 0}

    def policy_for(self, model: str) -> BatchPolicy:
        return self._policies.get(model, self._default)

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self, model: str | None = None) -> int:
        with self._cond:
            if model is not None:
                q = self._queues.get(model)
                return len(q) if q else 0
            return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Enqueue one request; wakes any worker waiting in next_batch."""
        with self._cond:
            if self._closed:
                raise ServeError("batcher is closed; request rejected")
            self._queues.setdefault(request.model, deque()).append(request)
            total = sum(len(q) for q in self._queues.values())
            if total > self.depth_high:
                self.depth_high = total
            self._cond.notify_all()

    def requeue(self, request: InferenceRequest) -> None:
        """Put a retried request back at the *front* of its model queue.

        Retries have already waited a full queue pass plus a failed
        execution, so they re-enter at the head — FIFO order among first
        attempts is preserved behind them, and a retried request cannot
        be starved by fresh arrivals while its deadline burns down.
        """
        with self._cond:
            if self._closed:
                raise ServeError("batcher is closed; retry rejected")
            self._queues.setdefault(request.model, deque()).appendleft(
                request
            )
            self._cond.notify_all()

    def close(self) -> None:
        """Stop accepting requests; queued work drains as final batches."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def abort(self) -> list[InferenceRequest]:
        """Close *and* evict everything still queued, returning it.

        The fail-fast shutdown path: :meth:`close` lets queued work drain
        as final batches, which is right for a graceful stop but wrong
        for teardown — requests would keep a dying server's chips busy.
        The caller owns failing the returned requests' futures.
        """
        with self._cond:
            self._closed = True
            evicted: list[InferenceRequest] = []
            for q in self._queues.values():
                evicted.extend(q)
                q.clear()
            self._cond.notify_all()
        return evicted

    def shed_victim(
        self, priority: int, slack_s: float, now: float
    ) -> InferenceRequest | None:
        """Pop the queued request least worth serving, if any is *less*
        worth serving than a ``(priority, slack_s)`` candidate.

        Shedding order: lowest priority first; within a priority, the
        most deadline-hopeless (smallest remaining slack) first.  Returns
        the evicted request, or None when every queued request is at
        least as valuable as the candidate — in which case admission
        control should shed the candidate itself.
        """
        with self._cond:
            worst = None
            worst_key = None
            worst_queue = None
            for q in self._queues.values():
                for request in q:
                    key = (request.priority, request.slack_s(now))
                    if worst_key is None or key < worst_key:
                        worst, worst_key, worst_queue = request, key, q
            if worst is None or worst_key >= (priority, slack_s):
                return None
            worst_queue.remove(worst)
            return worst

    # ------------------------------------------------------------------
    def _pop_batch(
        self, model: str, q: deque, n: int, trigger: str
    ) -> Batch:
        requests = [q.popleft() for _ in range(min(n, len(q)))]
        batch = Batch(
            id=self._next_batch_id,
            model=model,
            requests=requests,
            trigger=trigger,
        )
        self._next_batch_id += 1
        self.released[trigger] += 1
        return batch

    def _ready_batch(self, now: float) -> Batch | None:
        """The next releasable batch under the caller-held lock.

        Deadline-expired queues release first, most overdue first — a
        model that just hit ``full`` must not starve one whose oldest
        request blew past its delay budget several wakeups ago (with the
        old first-releasable-in-dict-order scan, a hot model refilling to
        ``full`` could push a quiet model's overdue batch back forever).
        With no expired deadline, the first full queue releases; during
        drain the original in-order scan applies (every queue releases
        immediately anyway).
        """
        if not self._closed:
            overdue_model = None
            overdue_by = 0.0
            for model, q in self._queues.items():
                if not q:
                    continue
                policy = self.policy_for(model)
                overdue = (
                    now - q[0].timing.submitted_s - policy.max_delay_s
                )
                if overdue >= 0 and (
                    overdue_model is None or overdue > overdue_by
                ):
                    overdue_model, overdue_by = model, overdue
            if overdue_model is not None:
                q = self._queues[overdue_model]
                policy = self.policy_for(overdue_model)
                trigger = "full" if len(q) >= policy.max_batch \
                    else "deadline"
                return self._pop_batch(
                    overdue_model, q, policy.max_batch, trigger
                )
        for model, q in self._queues.items():
            if not q:
                continue
            policy = self.policy_for(model)
            if len(q) >= policy.max_batch:
                return self._pop_batch(model, q, policy.max_batch, "full")
            if self._closed:
                return self._pop_batch(model, q, policy.max_batch, "drain")
        return None

    def _next_deadline(self) -> float | None:
        """Earliest instant any queued batch becomes deadline-releasable."""
        deadline = None
        for model, q in self._queues.items():
            if not q:
                continue
            t = q[0].timing.submitted_s + self.policy_for(model).max_delay_s
            if deadline is None or t < deadline:
                deadline = t
        return deadline

    def next_batch(self, timeout: float | None = None) -> Batch | None:
        """Block until a batch is releasable; None when closed and drained.

        Safe for any number of concurrent workers: batches pop under the
        lock, so no request can be dispatched twice, and a ``timeout``
        (seconds) bounds the wait for callers that must stay responsive.
        """
        give_up = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                now = self._clock()
                batch = self._ready_batch(now)
                if batch is not None:
                    for request in batch.requests:
                        request.timing.dispatched_s = now
                    return batch
                if self._closed:
                    return None  # closed and fully drained
                wait = None
                deadline = self._next_deadline()
                if deadline is not None:
                    wait = max(deadline - now, 0.0)
                if give_up is not None:
                    remaining = give_up - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._cond.wait(wait)
