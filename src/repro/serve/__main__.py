"""Demo driver: ``python -m repro.serve``.

Trains a small ShapeSet CNN on the host, stands up an
:class:`~repro.serve.InferenceServer` with the CNN and a transformer FFN
registered, fires a burst of interleaved requests at it, and prints the
serving rollup: per-model latency percentiles, cache hit rate, batch
triggers, and the differential check against the sequential unbatched
oracle.  ``--trace serve.json`` additionally writes a Perfetto trace with
one row per pool worker.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from ..config import small_test_chip
from ..nn import make_shapes, make_small_cnn, train
from ..nn.transformer import TransformerConfig
from .models import (
    CnnServeModel,
    ShardedCnnServeModel,
    TransformerMlpServeModel,
)
from .request import BatchPolicy
from .server import InferenceServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="serve two workloads on a pool of simulated TSPs",
    )
    parser.add_argument("--requests", type=int, default=24,
                        help="requests per model (default 24)")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size (default 2)")
    parser.add_argument("--chips", type=int, default=1,
                        help="chips per worker (default 1); >1 serves the "
                             "CNN pipeline-sharded over a C2C ring")
    parser.add_argument("--max-batch", type=int, default=4,
                        help="dynamic batch ceiling (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Perfetto trace of the serve run")
    parser.add_argument("--check", action="store_true",
                        help="verify every output against the sequential "
                             "unbatched oracle (slower)")
    args = parser.parse_args(argv)

    config = small_test_chip()
    rng = np.random.default_rng(args.seed)

    print("training a small CNN on the host ...", flush=True)
    data = make_shapes(n_train=200, n_test=64, image_size=12, n_classes=3,
                       noise=0.08, seed=args.seed)
    cnn = make_small_cnn(3, channels=4, image_size=12, seed=args.seed)
    train(cnn, data, epochs=4, lr=0.1, seed=args.seed)

    if args.chips > 1:
        cnn_model = ShardedCnnServeModel(
            "cnn", cnn, config, calibration=data.x_train[:32],
            n_chips=args.chips,
        )
    else:
        cnn_model = CnnServeModel(
            "cnn", cnn, config, calibration=data.x_train[:32]
        )
    models = [
        cnn_model,
        TransformerMlpServeModel(
            "mlp",
            TransformerConfig(d_model=32, n_heads=4, d_ff=64,
                              seq_len=16, n_layers=1, vocab=128),
            config,
            seed=args.seed,
        ),
    ]

    policy = BatchPolicy(max_batch=args.max_batch, max_delay_s=0.002)
    server = InferenceServer(
        config, models,
        n_workers=args.workers,
        n_chips=args.chips,
        default_policy=policy,
        record_spans=args.trace is not None,
        tracing=args.trace is not None,
        trace_chip_events=args.trace is not None,
    )

    images = data.x_test[:args.requests]
    tokens = rng.standard_normal((args.requests, 32))
    print(f"serving {2 * args.requests} requests "
          f"({args.requests} per model) on {args.workers} chips ...",
          flush=True)
    t0 = time.monotonic()
    futures = []
    for i in range(args.requests):
        futures.append(("cnn", images[i % len(images)],
                        server.submit("cnn", images[i % len(images)])))
        futures.append(("mlp", tokens[i],
                        server.submit("mlp", tokens[i])))
    results = [(m, p, f.result(timeout=120.0)) for m, p, f in futures]
    wall_s = time.monotonic() - t0
    server.close()

    mismatches = 0
    if args.check:
        print("checking against the sequential unbatched oracle ...",
              flush=True)
        for model, payload, result in results:
            ref = server.sequential_reference(model, payload)
            if not np.array_equal(result.output, ref):
                mismatches += 1

    stats = server.stats()
    print()
    print(f"  wall time          {wall_s * 1e3:8.1f} ms "
          f"({len(results) / wall_s:.1f} req/s)")
    for model, lat in sorted(stats["latency"].items()):
        print(f"  {model:<8} n={lat['n']:<4} p50={lat['p50_ms']:7.2f} ms  "
              f"p99={lat['p99_ms']:7.2f} ms")
    cache = stats["cache"]
    print(f"  cache              {cache['hits']} hits / "
          f"{cache['misses']} misses "
          f"(hit rate {cache['hit_rate']:.0%}, "
          f"{cache['resident']} resident)")
    print(f"  batches            {stats['batcher']['released']}")
    if args.check:
        verdict = "all exact" if mismatches == 0 else f"{mismatches} WRONG"
        print(f"  oracle             {verdict}")

    if args.trace:
        from ..obs.trace import PerfettoTraceBuilder, write_trace
        builder = PerfettoTraceBuilder(clock_ghz=config.clock_ghz)
        # one unified trace: request/batch/phase spans + anchored
        # on-chip events, host batch spans as a separate process
        builder.add_request_trace(server.tracer)
        builder.add_host_spans(list(server.spans), name="serve.batches",
                               pid=101)
        write_trace(builder.build(), args.trace)
        print(f"  trace              {args.trace} "
              f"({len(server.tracer)} rtrace spans, "
              f"{server.tracer.snapshot()['dropped']} dropped)")

    print()
    print(json.dumps(stats, indent=2))
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
