"""Request/response types of the serving layer.

One :class:`InferenceRequest` is one caller's tensor plus a
:class:`ServeFuture` the caller blocks on; the batcher stamps it into a
:class:`Batch`, a pool worker executes the batch on a simulated chip, and
each request resolves to an :class:`InferenceResult` carrying the
queue/compile/execute latency breakdown the SLO dashboards need.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import ServeError


@dataclass(frozen=True)
class BatchPolicy:
    """Deadline-aware dynamic-batching knobs, per model.

    A batch dispatches when ``max_batch`` requests are waiting, or when
    the oldest waiting request has queued ``max_delay_s`` — the classic
    batching/latency-SLO tradeoff (the TPU paper's "latency limits how
    much batching helps"): larger ``max_batch`` amortizes the chip better,
    smaller ``max_delay_s`` bounds the queueing a lone request can suffer.
    """

    max_batch: int = 8
    max_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if self.max_delay_s < 0:
            raise ServeError("max_delay_s must be >= 0")


@dataclass
class RequestTiming:
    """Wall-clock breakdown of one request's life, in seconds.

    ``queue_s`` is submit → batch dispatch; ``compile_s`` is this
    request's share of scheduler time inside its batch (zero on every
    cache hit); ``execute_s`` is its share of simulation + host marshal.
    """

    submitted_s: float
    dispatched_s: float = 0.0
    completed_s: float = 0.0
    compile_s: float = 0.0
    execute_s: float = 0.0

    @property
    def queue_s(self) -> float:
        return max(self.dispatched_s - self.submitted_s, 0.0)

    @property
    def total_s(self) -> float:
        return max(self.completed_s - self.submitted_s, 0.0)


@dataclass
class InferenceResult:
    """One served request's outcome."""

    request_id: int
    model: str
    output: np.ndarray
    timing: RequestTiming
    batch_id: int
    batch_size: int
    worker: str
    cycles: int
    cache_hits: int = 0
    cache_misses: int = 0


class ServeFuture:
    """A one-shot, thread-safe completion handle."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: InferenceResult | None = None
        self._error: BaseException | None = None

    def set_result(self, result: InferenceResult) -> None:
        self._result = result
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> InferenceResult:
        """Block until resolved; re-raises the worker's failure."""
        if not self._done.wait(timeout):
            raise ServeError("timed out waiting for an inference result")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def error(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; returns the failure instead of raising."""
        if not self._done.wait(timeout):
            raise ServeError("timed out waiting for an inference result")
        return self._error


@dataclass
class InferenceRequest:
    """One queued inference call.

    ``deadline_s`` is an *absolute* ``time.monotonic()`` instant (None =
    no deadline): the retry path re-enqueues a failed request only while
    the deadline still has one estimated batch-latency of slack, and
    admission control sheds the most deadline-hopeless requests first.
    ``priority`` orders shedding (lower sheds first); ``attempt`` counts
    executions — 0 on first dispatch, bumped by every retry requeue.
    """

    id: int
    model: str
    payload: np.ndarray
    timing: RequestTiming
    future: ServeFuture = field(default_factory=ServeFuture)
    deadline_s: float | None = None
    priority: int = 0
    attempt: int = 0

    def slack_s(self, now: float) -> float:
        """Seconds of deadline budget left (inf with no deadline)."""
        if self.deadline_s is None:
            return float("inf")
        return self.deadline_s - now


@dataclass
class Batch:
    """A group of same-model requests dispatched together."""

    id: int
    model: str
    requests: list[InferenceRequest]
    #: why the batcher released it: "full", "deadline", or "drain"
    trigger: str

    def __len__(self) -> int:
        return len(self.requests)
