"""Self-healing serving policies: retry budgets, fault diagnosis, repair.

The TSP has no hardware arbitration to mask a fault — a failed batch is
a *software* event the serving tier must close the loop on (the paper's
Section II-D fleet-health story, and the datacenter-accelerator stance of
the TPU paper: degradation is a serving concern).  This module holds the
policy vocabulary the :class:`~repro.serve.pool.ChipPool` executes:

* :class:`RetryPolicy` — how many attempts a request gets and how much
  deadline slack a retry must still have (one estimated batch latency,
  from the :class:`LatencyEstimator` EWMA).
* :class:`HealthPolicy` — how many transient strikes quarantine a chip,
  how many clean probes repair it, and how often a degraded chip
  re-checks its blacklisted hardware.
* :func:`diagnose` — classify a batch failure as ``software`` (never
  retry), ``degradable`` (localizable to a :class:`~repro.resil.Blacklist`
  — recompile around it and keep serving), or ``transient`` (retry the
  requests, strike the chip).
* :func:`probe_memory` / :func:`blacklist_recovered` — the repair
  policy's hardware checks: a host-level sweep over every MEM slice, and
  the degraded worker's periodic re-probe of just its blacklisted
  resources.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

from ..arch.geometry import Hemisphere
from ..errors import ServeError, SimulationError
from ..resil.degrade import Blacklist, blacklist_from_fault

#: chip ids of pooled ring members look like ``pool0.c2`` / ``spare1.c0``
_RING_CHIP_ID = re.compile(r".*\.c(\d+)$")


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry budget for failed batches.

    A request is re-enqueued after a retryable failure only while
    ``attempt + 1 < max_attempts`` *and* its deadline still has at least
    one estimated batch latency of slack — retrying work that cannot
    finish in time just burns capacity the healthy requests need.
    ``default_deadline_s`` (relative, applied at submit) gives every
    request a deadline when the caller sets none; None leaves such
    requests deadline-free (retries limited by ``max_attempts`` only).
    """

    max_attempts: int = 3
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServeError("max_attempts must be >= 1")


@dataclass(frozen=True)
class HealthPolicy:
    """When to quarantine, how to repair, how often to re-check."""

    #: consecutive transient failures before the chip is quarantined
    quarantine_after: int = 2
    #: clean probe passes before quarantined hardware re-enters service
    probes_required: int = 2
    #: successful degraded batches between blacklist re-probes
    recheck_after: int = 8
    #: ECC/FEC counter level that flags a chip at checkout health polls
    wearout_threshold: int = 10

    def __post_init__(self) -> None:
        if self.quarantine_after < 1:
            raise ServeError("quarantine_after must be >= 1")
        if self.probes_required < 1:
            raise ServeError("probes_required must be >= 1")


class LatencyEstimator:
    """Thread-safe per-model EWMA of observed batch latency.

    The retry path's cost model: "one more attempt takes about this
    long".  Optimistic before the first observation (``initial_s``) so a
    cold server never refuses the retry that would have warmed it up.
    """

    def __init__(self, alpha: float = 0.3, initial_s: float = 0.05) -> None:
        self.alpha = alpha
        self.initial_s = initial_s
        self._lock = threading.Lock()
        self._estimates: dict[str, float] = {}

    def observe(self, model: str, seconds: float) -> None:
        with self._lock:
            previous = self._estimates.get(model)
            if previous is None:
                self._estimates[model] = seconds
            else:
                self._estimates[model] = (
                    self.alpha * seconds + (1 - self.alpha) * previous
                )

    def estimate(self, model: str) -> float:
        with self._lock:
            return self._estimates.get(model, self.initial_s)


# ----------------------------------------------------------------------
# Diagnosis


@dataclass(frozen=True)
class Diagnosis:
    """What a batch failure means for the hardware that ran it.

    ``kind`` is ``"software"`` (a bug or contract violation — failing
    again is certain, never retry, never blame the chip),
    ``"degradable"`` (localized to ``blacklist`` — recompile around the
    dead resource and keep the chip serving), or ``"transient"`` (retry
    the requests; repeated strikes quarantine the chip).
    """

    kind: str
    blacklist: Blacklist | None = None
    chip_index: int | None = None
    reason: str = ""


def chip_index_of(error: BaseException) -> int | None:
    """The ring position of the chip an error names, if parseable."""
    chip_id = getattr(error, "chip_id", None)
    if chip_id is None:
        return None
    m = _RING_CHIP_ID.match(str(chip_id))
    return int(m.group(1)) if m else None


def diagnose(error: BaseException, n_chips: int = 1) -> Diagnosis:
    """Classify one batch failure for the retry/quarantine machinery."""
    if not isinstance(error, SimulationError):
        return Diagnosis(
            kind="software",
            reason=f"{type(error).__name__} is not a hardware fault",
        )
    chip_index = chip_index_of(error)
    blacklist = blacklist_from_fault(
        error, chip_index=chip_index or 0, n_chips=n_chips
    )
    if blacklist is not None:
        return Diagnosis(
            kind="degradable",
            blacklist=blacklist,
            chip_index=chip_index,
            reason=f"localized to {blacklist.describe()}",
        )
    return Diagnosis(
        kind="transient",
        chip_index=chip_index,
        reason=f"unlocalized {type(error).__name__}",
    )


def merge_blacklists(
    a: Blacklist | None, b: Blacklist | None
) -> Blacklist:
    """Union of two blacklists (either may be None)."""
    a = a or Blacklist()
    b = b or Blacklist()
    return Blacklist(
        mem_slices=a.mem_slices | b.mem_slices,
        mxm_planes=a.mxm_planes | b.mxm_planes,
        ring_cables=a.ring_cables | b.ring_cables,
    )


# ----------------------------------------------------------------------
# Quarantine accounting and repair probes


@dataclass
class QuarantineRecord:
    """One piece of hardware pulled from service, and why."""

    worker: str
    reason: str
    since_s: float
    hardware: object = field(repr=False, default=None)
    blacklist: Blacklist | None = None
    probes_passed: int = 0
    repaired_s: float | None = None

    @property
    def active(self) -> bool:
        return self.repaired_s is None


def _chips_of(hardware) -> list:
    return list(hardware.chips) if hasattr(hardware, "chips") else [hardware]


def probe_memory(hardware, skip: Blacklist | None = None) -> None:
    """Host-level SRAM sweep: write+read one word in every MEM slice.

    The repair policy's probe: cheap (no compile, no simulation run) yet
    it touches every slice of every chip of ``hardware``, so a dead slice
    raises :class:`~repro.errors.MemoryFaultError` with the slice's unit
    context.  Slices on ``skip`` are not probed (known-dead hardware a
    degraded blacklist already routes around).
    """
    skip_slices = skip.mem_slices if skip is not None else frozenset()
    for chip in _chips_of(hardware):
        for hemisphere in Hemisphere:
            for index in range(chip.config.mem_slices_per_hemisphere):
                if (hemisphere, index) in skip_slices:
                    continue
                unit = chip.mem_unit(hemisphere, index)
                word = unit.host_read(0)
                unit.host_write(0, word)


def blacklist_recovered(hardware, blacklist: Blacklist) -> bool:
    """True when every blacklisted resource probes healthy again.

    The degraded worker's periodic re-check.  Only MEM slices are
    probeable from the host; a blacklist carrying MXM planes or ring
    cables is conservatively treated as still faulty (those need a full
    compiled probe, which quarantine-and-repair covers).
    """
    if blacklist.mxm_planes or blacklist.ring_cables:
        return False
    for chip in _chips_of(hardware):
        for hemisphere, index in blacklist.mem_slices:
            unit = chip.mem_unit(hemisphere, index)
            if unit.dead:
                return False
            try:
                unit.host_read(0)
            except SimulationError:
                return False
    return True
