"""The inference server: batcher + program cache + chip pool, wired to obs.

:class:`InferenceServer` is the one object a caller needs: register
models, :meth:`submit` payloads (non-blocking, returns a
:class:`~repro.serve.request.ServeFuture`), or :meth:`run` a synchronous
convenience call.  Internally it owns a
:class:`~repro.serve.batcher.DynamicBatcher`, a content-addressed
:class:`~repro.serve.cache.ProgramCache`, and a
:class:`~repro.serve.pool.ChipPool` of simulated chips, and exports the
serving-layer counters through the same
:class:`~repro.obs.counters.TelemetryCollector` registry the simulator
uses — plus wall-clock :class:`~repro.obs.trace.HostSpan` records that
render as a "serve" process alongside the chip's Perfetto tracks.

Host-side time (queue waits, scheduler runs) has no chip cycle, so the
serve registry counts in **microseconds since server start** instead of
cycles; window indices are then 256-µs time buckets, which keeps every
existing registry tool (snapshot, totals, window series) working
unchanged.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..config import ArchConfig
from ..errors import ServeError
from ..obs.counters import TelemetryCollector
from ..obs.trace import HostSpan
from .batcher import DynamicBatcher
from .cache import ProgramCache
from .models import ServeModel
from .pool import BatchOutcome, ChipPool
from .request import (
    BatchPolicy,
    InferenceRequest,
    InferenceResult,
    RequestTiming,
    ServeFuture,
)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class InferenceServer:
    """Serve registered models on a pool of simulated TSP chips."""

    def __init__(
        self,
        config: ArchConfig,
        models: list[ServeModel],
        n_workers: int = 2,
        n_chips: int = 1,
        cache_capacity: int = 64,
        policies: dict[str, BatchPolicy] | None = None,
        default_policy: BatchPolicy | None = None,
        record_spans: bool = False,
    ) -> None:
        if not models:
            raise ServeError("an inference server needs at least one model")
        self.config = config
        self.models = {m.name: m for m in models}
        if len(self.models) != len(models):
            raise ServeError("model names must be unique")
        self.batcher = DynamicBatcher(
            policies=policies, default_policy=default_policy
        )
        self.cache = ProgramCache(capacity=cache_capacity)
        self.registry = TelemetryCollector(name="serve")
        self.record_spans = record_spans
        self.spans: list[HostSpan] = []
        self._start_s = time.monotonic()
        self._lock = threading.Lock()
        self._next_request_id = 0
        self._completed = 0
        self._failed = 0
        self._latencies: dict[str, list[float]] = {}  # model -> total_s
        self.pool = ChipPool(
            config,
            models,
            self.batcher,
            self.cache,
            n_workers=n_workers,
            n_chips=n_chips,
            on_outcome=self._observe,
        )
        self._closed = False
        self.pool.start()

    # ------------------------------------------------------------------
    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, timeout: float = 30.0) -> None:
        """Drain queued requests, stop the workers, and join them."""
        if self._closed:
            return
        self._closed = True
        self.batcher.close()
        self.pool.join(timeout=timeout)

    # ------------------------------------------------------------------
    def _now_us(self) -> int:
        """Microseconds since server start — the registry's 'cycle'."""
        return int((time.monotonic() - self._start_s) * 1e6)

    def _observe(self, outcome: BatchOutcome) -> None:
        """Pool callback: fold one batch into counters and spans."""
        us = self._now_us()
        unit = f"serve:{outcome.batch.model}"
        reg = self.registry
        n = len(outcome.batch.requests)
        with self._lock:
            if outcome.ok:
                self._completed += n
                reg.count(unit, "requests_ok", us, n)
                lat = self._latencies.setdefault(outcome.batch.model, [])
                for request in outcome.batch.requests:
                    lat.append(request.timing.total_s)
            else:
                self._failed += n
                reg.count(unit, "requests_failed", us, n)
            reg.count(unit, "batches", us, 1)
            reg.count(unit, f"trigger_{outcome.batch.trigger}", us, 1)
            reg.count(unit, "batched_requests", us, n)
            reg.count(unit, "cache_hits", us, outcome.stats.cache_hits)
            reg.count(unit, "cache_misses", us, outcome.stats.cache_misses)
            reg.count(unit, "chip_cycles", us, outcome.stats.cycles)
            reg.count(
                unit, "compile_us", us, int(outcome.stats.compile_s * 1e6)
            )
            reg.count(
                unit, "execute_us", us, int(outcome.stats.execute_s * 1e6)
            )
            reg.mark_high("serve", "batch_size_high", n)
            reg.mark_high("serve", "queue_depth_high", self.batcher.depth_high)
            if self.record_spans:
                start_us = int(
                    (outcome.started_s - self._start_s) * 1e6
                )
                dur_us = max(
                    int((outcome.finished_s - outcome.started_s) * 1e6), 1
                )
                self.spans.append(
                    HostSpan(
                        track=outcome.worker,
                        name=(
                            f"{outcome.batch.model} "
                            f"batch{outcome.batch.id} x{n}"
                        ),
                        start_us=start_us,
                        dur_us=dur_us,
                        args={
                            "trigger": outcome.batch.trigger,
                            "ok": outcome.ok,
                            "cycles": outcome.stats.cycles,
                            "cache_hits": outcome.stats.cache_hits,
                            "cache_misses": outcome.stats.cache_misses,
                        },
                    )
                )

    # ------------------------------------------------------------------
    def submit(self, model: str, payload: np.ndarray) -> ServeFuture:
        """Enqueue one request; returns a future to block on."""
        served = self.models.get(model)
        if served is None:
            raise ServeError(
                f"unknown model {model!r}; registered: "
                f"{sorted(self.models)}"
            )
        payload = np.asarray(payload, dtype=np.float64)
        served.validate(payload)
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        request = InferenceRequest(
            id=request_id,
            model=model,
            payload=payload,
            timing=RequestTiming(submitted_s=time.monotonic()),
        )
        self.batcher.submit(request)
        return request.future

    def run(
        self, model: str, payload: np.ndarray, timeout: float = 60.0
    ) -> InferenceResult:
        """Submit one request and block for its result."""
        return self.submit(model, payload).result(timeout=timeout)

    def sequential_reference(
        self, model: str, payload: np.ndarray
    ) -> np.ndarray:
        """The unbatched, uncached, fresh-chip oracle for one payload."""
        served = self.models.get(model)
        if served is None:
            raise ServeError(f"unknown model {model!r}")
        return served.run_reference(np.asarray(payload, dtype=np.float64))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One JSON-able rollup: requests, latency percentiles, cache, pool."""
        with self._lock:
            latency = {
                model: {
                    "n": len(vals),
                    "p50_ms": round(_percentile(vals, 50) * 1e3, 3),
                    "p99_ms": round(_percentile(vals, 99) * 1e3, 3),
                    "max_ms": round(max(vals) * 1e3, 3) if vals else 0.0,
                }
                for model, vals in self._latencies.items()
            }
            completed, failed = self._completed, self._failed
        return {
            "requests": {
                "submitted": self._next_request_id,
                "completed": completed,
                "failed": failed,
            },
            "latency": latency,
            "cache": self.cache.snapshot(),
            "batcher": {
                "released": dict(self.batcher.released),
                "depth_high": self.batcher.depth_high,
            },
            "pool": {
                "workers": len(self.pool.workers),
                "alive": self.pool.alive,
                "batches_run": sum(
                    w.batches_run for w in self.pool.workers
                ),
                "batches_failed": sum(
                    w.batches_failed for w in self.pool.workers
                ),
            },
        }
