"""The inference server: batcher + program cache + chip pool, wired to obs.

:class:`InferenceServer` is the one object a caller needs: register
models, :meth:`submit` payloads (non-blocking, returns a
:class:`~repro.serve.request.ServeFuture`), or :meth:`run` a synchronous
convenience call.  Internally it owns a
:class:`~repro.serve.batcher.DynamicBatcher`, a content-addressed
:class:`~repro.serve.cache.ProgramCache`, and a
:class:`~repro.serve.pool.ChipPool` of simulated chips, and exports the
serving-layer counters through the same
:class:`~repro.obs.counters.TelemetryCollector` registry the simulator
uses — plus wall-clock :class:`~repro.obs.trace.HostSpan` records that
render as a "serve" process alongside the chip's Perfetto tracks.

Host-side time (queue waits, scheduler runs) has no chip cycle, so the
serve registry counts in **microseconds since server start** instead of
cycles; window indices are then 256-µs time buckets, which keeps every
existing registry tool (snapshot, totals, window series) working
unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..config import ArchConfig
from ..errors import ServeError
from ..obs.counters import TelemetryCollector
from ..obs.metrics import LatencyHistogram, SloTracker
from ..obs.rtrace import RequestTracer
from ..obs.trace import HostSpan
from .batcher import DynamicBatcher
from .cache import ProgramCache
from .models import ServeModel
from .pool import BatchOutcome, ChipPool
from .request import (
    BatchPolicy,
    InferenceRequest,
    InferenceResult,
    RequestTiming,
    ServeFuture,
)


class InferenceServer:
    """Serve registered models on a pool of simulated TSP chips.

    Observability is bounded-memory end to end: latency accounting lives
    in log-bucketed :class:`~repro.obs.metrics.LatencyHistogram` s
    (O(buckets), not O(requests)), host spans in a drop-oldest ring
    buffer of at most ``max_spans`` entries (evictions counted in the
    registry), and — with ``tracing=True`` — a
    :class:`~repro.obs.rtrace.RequestTracer` that connects every
    request's queue-wait / batch / cache / compile / execute / transfer /
    respond phases into one span tree, equally bounded.
    """

    def __init__(
        self,
        config: ArchConfig,
        models: list[ServeModel],
        n_workers: int = 2,
        n_chips: int = 1,
        cache_capacity: int = 64,
        policies: dict[str, BatchPolicy] | None = None,
        default_policy: BatchPolicy | None = None,
        record_spans: bool = False,
        max_spans: int = 4096,
        tracing: bool = False,
        trace_chip_events: bool = False,
        slos: dict[str, float] | None = None,
        slo_default_s: float | None = None,
    ) -> None:
        if not models:
            raise ServeError("an inference server needs at least one model")
        if max_spans < 1:
            raise ServeError("max_spans must be >= 1")
        self.config = config
        self.models = {m.name: m for m in models}
        if len(self.models) != len(models):
            raise ServeError("model names must be unique")
        self.batcher = DynamicBatcher(
            policies=policies, default_policy=default_policy
        )
        self.cache = ProgramCache(capacity=cache_capacity)
        self.registry = TelemetryCollector(name="serve")
        self.record_spans = record_spans
        self.max_spans = max_spans
        self.spans: deque[HostSpan] = deque(maxlen=max_spans)
        self.spans_dropped = 0
        self._start_s = time.monotonic()
        self.tracer: RequestTracer | None = (
            RequestTracer(
                max_spans=max_spans,
                origin_s=self._start_s,
                chip_events=trace_chip_events,
            )
            if tracing else None
        )
        self.slo = SloTracker(
            targets=slos,
            default_target_s=slo_default_s,
            registry=self.registry,
        )
        self._lock = threading.Lock()
        self._next_request_id = 0
        self._completed = 0
        self._failed = 0
        #: model -> phase ("total" | "queue") -> bounded histogram
        self._histograms: dict[str, dict[str, LatencyHistogram]] = {}
        chip_kwargs = {"trace": True} if trace_chip_events else None
        self.pool = ChipPool(
            config,
            models,
            self.batcher,
            self.cache,
            n_workers=n_workers,
            n_chips=n_chips,
            chip_kwargs=chip_kwargs,
            on_outcome=self._observe,
            tracer=self.tracer,
        )
        self._closed = False
        self.pool.start()

    # ------------------------------------------------------------------
    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, timeout: float = 30.0) -> None:
        """Drain queued requests, stop the workers, and join them."""
        if self._closed:
            return
        self._closed = True
        self.batcher.close()
        self.pool.join(timeout=timeout)

    # ------------------------------------------------------------------
    def _now_us(self) -> int:
        """Microseconds since server start — the registry's 'cycle'."""
        return int((time.monotonic() - self._start_s) * 1e6)

    def _histogram(self, model: str, phase: str) -> LatencyHistogram:
        phases = self._histograms.setdefault(model, {})
        hist = phases.get(phase)
        if hist is None:
            hist = phases[phase] = LatencyHistogram()
        return hist

    def histogram_snapshot(self) -> dict[str, dict[str, LatencyHistogram]]:
        """Consistent copies of every latency histogram (model x phase)."""
        with self._lock:
            return {
                model: {
                    phase: hist.copy() for phase, hist in phases.items()
                }
                for model, phases in self._histograms.items()
            }

    def _observe(self, outcome: BatchOutcome) -> None:
        """Pool callback: fold one batch into counters and spans."""
        us = self._now_us()
        model = outcome.batch.model
        unit = f"serve:{model}"
        reg = self.registry
        n = len(outcome.batch.requests)
        with self._lock:
            if outcome.ok:
                self._completed += n
                reg.count(unit, "requests_ok", us, n)
            else:
                self._failed += n
                reg.count(unit, "requests_failed", us, n)
            total_hist = self._histogram(model, "total")
            queue_hist = self._histogram(model, "queue")
            for request in outcome.batch.requests:
                total_hist.record(request.timing.total_s)
                queue_hist.record(request.timing.queue_s)
            reg.count(unit, "batches", us, 1)
            reg.count(unit, f"trigger_{outcome.batch.trigger}", us, 1)
            reg.count(unit, "batched_requests", us, n)
            reg.count(unit, "cache_hits", us, outcome.stats.cache_hits)
            reg.count(unit, "cache_misses", us, outcome.stats.cache_misses)
            reg.count(unit, "chip_cycles", us, outcome.stats.cycles)
            reg.count(
                unit, "compile_us", us, int(outcome.stats.compile_s * 1e6)
            )
            reg.count(
                unit, "execute_us", us, int(outcome.stats.execute_s * 1e6)
            )
            reg.mark_high("serve", "batch_size_high", n)
            reg.mark_high("serve", "queue_depth_high", self.batcher.depth_high)
            for request in outcome.batch.requests:
                self.slo.observe(
                    model, request.timing.total_s, us, ok=outcome.ok
                )
            if self.record_spans:
                start_us = int(
                    (outcome.started_s - self._start_s) * 1e6
                )
                dur_us = max(
                    int((outcome.finished_s - outcome.started_s) * 1e6), 1
                )
                if len(self.spans) == self.max_spans:
                    self.spans_dropped += 1
                    reg.count("serve", "spans_dropped", us, 1)
                self.spans.append(
                    HostSpan(
                        track=outcome.worker,
                        name=(
                            f"{model} "
                            f"batch{outcome.batch.id} x{n}"
                        ),
                        start_us=start_us,
                        dur_us=dur_us,
                        args={
                            "trigger": outcome.batch.trigger,
                            "ok": outcome.ok,
                            "cycles": outcome.stats.cycles,
                            "cache_hits": outcome.stats.cache_hits,
                            "cache_misses": outcome.stats.cache_misses,
                        },
                    )
                )
        if self.tracer is not None:
            self._trace_requests(outcome)

    def _trace_requests(self, outcome: BatchOutcome) -> None:
        """Record each request's root + queue-wait spans, linked to the
        batch span the pool worker recorded (``args["batch_span"]``)."""
        tracer = self.tracer
        for request in outcome.batch.requests:
            start_us = tracer.us_of(request.timing.submitted_s)
            end_us = tracer.us_of(
                request.timing.completed_s or outcome.finished_s
            )
            root = tracer.record(
                "request",
                "requests",
                start_us,
                end_us,
                request_id=request.id,
                batch_id=outcome.batch.id,
                model=outcome.batch.model,
                args={
                    "batch_span": outcome.span_id,
                    "worker": outcome.worker,
                    "ok": outcome.ok,
                },
            )
            dispatched_s = (
                request.timing.dispatched_s or outcome.started_s
            )
            tracer.record(
                "queue_wait",
                "requests",
                start_us,
                tracer.us_of(dispatched_s),
                parent_id=root.id,
                request_id=request.id,
                batch_id=outcome.batch.id,
                model=outcome.batch.model,
            )

    # ------------------------------------------------------------------
    def submit(self, model: str, payload: np.ndarray) -> ServeFuture:
        """Enqueue one request; returns a future to block on."""
        served = self.models.get(model)
        if served is None:
            raise ServeError(
                f"unknown model {model!r}; registered: "
                f"{sorted(self.models)}"
            )
        payload = np.asarray(payload, dtype=np.float64)
        served.validate(payload)
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        request = InferenceRequest(
            id=request_id,
            model=model,
            payload=payload,
            timing=RequestTiming(submitted_s=time.monotonic()),
        )
        try:
            self.batcher.submit(request)
        except ServeError:
            # rejected before entering the queue — an SLO shed
            self.slo.shed(model, self._now_us())
            raise
        # sample queue depth on every submit, not just at batch
        # completion — peaks between batches are exactly the interesting
        # ones for admission control
        with self._lock:
            self.registry.mark_high(
                "serve", "queue_depth_high", self.batcher.depth_high
            )
        return request.future

    def run(
        self, model: str, payload: np.ndarray, timeout: float = 60.0
    ) -> InferenceResult:
        """Submit one request and block for its result."""
        return self.submit(model, payload).result(timeout=timeout)

    def sequential_reference(
        self, model: str, payload: np.ndarray
    ) -> np.ndarray:
        """The unbatched, uncached, fresh-chip oracle for one payload."""
        served = self.models.get(model)
        if served is None:
            raise ServeError(f"unknown model {model!r}")
        return served.run_reference(np.asarray(payload, dtype=np.float64))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One JSON-able rollup: requests, latency quantiles, cache, pool.

        Latency quantiles come from the bounded histograms — upper
        bounds within ``1/sub_buckets`` of exact — so a long-running
        server's stats cost never grows with traffic.
        """
        with self._lock:
            latency = {
                model: {
                    **phases["total"].stats_ms(),
                    "queue_p99_ms": round(
                        phases["queue"].quantile(0.99) * 1e3, 3
                    ),
                }
                for model, phases in self._histograms.items()
            }
            completed, failed = self._completed, self._failed
            submitted = self._next_request_id
            spans = {
                "recorded": len(self.spans),
                "dropped": self.spans_dropped,
                "max_spans": self.max_spans,
            }
        return {
            "requests": {
                "submitted": submitted,
                "completed": completed,
                "failed": failed,
            },
            "latency": latency,
            "slo": self.slo.snapshot(),
            "spans": spans,
            "tracing": (
                self.tracer.snapshot() if self.tracer is not None else None
            ),
            "cache": self.cache.snapshot(),
            "batcher": {
                "released": dict(self.batcher.released),
                "depth_high": self.batcher.depth_high,
            },
            "pool": {
                "workers": len(self.pool.workers),
                "alive": self.pool.alive,
                "batches_run": sum(
                    w.batches_run for w in self.pool.workers
                ),
                "batches_failed": sum(
                    w.batches_failed for w in self.pool.workers
                ),
            },
        }
