"""The inference server: batcher + program cache + chip pool, wired to obs.

:class:`InferenceServer` is the one object a caller needs: register
models, :meth:`submit` payloads (non-blocking, returns a
:class:`~repro.serve.request.ServeFuture`), or :meth:`run` a synchronous
convenience call.  Internally it owns a
:class:`~repro.serve.batcher.DynamicBatcher`, a content-addressed
:class:`~repro.serve.cache.ProgramCache`, and a
:class:`~repro.serve.pool.ChipPool` of simulated chips, and exports the
serving-layer counters through the same
:class:`~repro.obs.counters.TelemetryCollector` registry the simulator
uses — plus wall-clock :class:`~repro.obs.trace.HostSpan` records that
render as a "serve" process alongside the chip's Perfetto tracks.

Host-side time (queue waits, scheduler runs) has no chip cycle, so the
serve registry counts in **microseconds since server start** instead of
cycles; window indices are then 256-µs time buckets, which keeps every
existing registry tool (snapshot, totals, window series) working
unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..config import ArchConfig
from ..errors import RequestError, ServeError
from ..obs.counters import TelemetryCollector
from ..obs.metrics import LatencyHistogram, SloTracker
from ..obs.rtrace import RequestTracer
from ..obs.trace import HostSpan
from .batcher import DynamicBatcher
from .cache import ProgramCache
from .models import ServeModel
from .pool import BatchOutcome, ChipPool
from .request import (
    BatchPolicy,
    InferenceRequest,
    InferenceResult,
    RequestTiming,
    ServeFuture,
)
from .resilient import HealthPolicy, RetryPolicy


class InferenceServer:
    """Serve registered models on a pool of simulated TSP chips.

    Observability is bounded-memory end to end: latency accounting lives
    in log-bucketed :class:`~repro.obs.metrics.LatencyHistogram` s
    (O(buckets), not O(requests)), host spans in a drop-oldest ring
    buffer of at most ``max_spans`` entries (evictions counted in the
    registry), and — with ``tracing=True`` — a
    :class:`~repro.obs.rtrace.RequestTracer` that connects every
    request's queue-wait / batch / cache / compile / execute / transfer /
    respond phases into one span tree, equally bounded.
    """

    def __init__(
        self,
        config: ArchConfig,
        models: list[ServeModel],
        n_workers: int = 2,
        n_chips: int = 1,
        cache_capacity: int = 64,
        policies: dict[str, BatchPolicy] | None = None,
        default_policy: BatchPolicy | None = None,
        record_spans: bool = False,
        max_spans: int = 4096,
        tracing: bool = False,
        trace_chip_events: bool = False,
        slos: dict[str, float] | None = None,
        slo_default_s: float | None = None,
        n_spares: int = 0,
        retry: RetryPolicy | None = None,
        health_policy: HealthPolicy | None = None,
        shed_factor: int = 4,
    ) -> None:
        if not models:
            raise ServeError("an inference server needs at least one model")
        if max_spans < 1:
            raise ServeError("max_spans must be >= 1")
        self.config = config
        self.models = {m.name: m for m in models}
        if len(self.models) != len(models):
            raise ServeError("model names must be unique")
        self.batcher = DynamicBatcher(
            policies=policies, default_policy=default_policy
        )
        self.cache = ProgramCache(capacity=cache_capacity)
        self.registry = TelemetryCollector(name="serve")
        self.record_spans = record_spans
        self.max_spans = max_spans
        self.spans: deque[HostSpan] = deque(maxlen=max_spans)
        self.spans_dropped = 0
        self._start_s = time.monotonic()
        self.tracer: RequestTracer | None = (
            RequestTracer(
                max_spans=max_spans,
                origin_s=self._start_s,
                chip_events=trace_chip_events,
            )
            if tracing else None
        )
        self.slo = SloTracker(
            targets=slos,
            default_target_s=slo_default_s,
            registry=self.registry,
        )
        if shed_factor < 1:
            raise ServeError("shed_factor must be >= 1")
        self.shed_factor = shed_factor
        self._lock = threading.Lock()
        self._next_request_id = 0
        self._completed = 0
        self._failed = 0
        self._retried = 0
        self._shed = 0
        #: recent pool health events (quarantine/repair/degraded/retired)
        self.health_events: deque[dict] = deque(maxlen=256)
        #: model -> phase ("total" | "queue") -> bounded histogram
        self._histograms: dict[str, dict[str, LatencyHistogram]] = {}
        chip_kwargs = {"trace": True} if trace_chip_events else None
        self.pool = ChipPool(
            config,
            models,
            self.batcher,
            self.cache,
            n_workers=n_workers,
            n_chips=n_chips,
            chip_kwargs=chip_kwargs,
            on_outcome=self._observe,
            tracer=self.tracer,
            n_spares=n_spares,
            retry=retry,
            health_policy=health_policy,
            on_health=self._observe_health,
        )
        self._closed = False
        self.pool.start()

    # ------------------------------------------------------------------
    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, timeout: float = 30.0) -> None:
        """Fail-fast shutdown: queued requests resolve, workers join.

        In-flight batches finish; everything still *queued* fails
        immediately with a ``shutdown``-outcome
        :class:`~repro.errors.RequestError` instead of keeping a dying
        server's chips busy — no caller ever hangs on a future the
        server will never run.  Parked (quarantined) workers and the
        repair loop are woken so they exit too.
        """
        if self._closed:
            return
        self._closed = True
        aborted = self.batcher.abort()
        now = time.monotonic()
        us = self._now_us()
        for request in aborted:
            request.timing.completed_s = now
            request.future.set_error(
                RequestError(
                    f"request {request.id} ({request.model}) dropped: "
                    "server shutting down",
                    outcome="shutdown",
                    attempt=request.attempt,
                )
            )
        if aborted:
            with self._lock:
                self._failed += len(aborted)
                self.registry.count(
                    "serve", "requests_shutdown", us, len(aborted)
                )
        self.pool.shutdown()
        self.pool.join(timeout=timeout)

    # ------------------------------------------------------------------
    def _now_us(self) -> int:
        """Microseconds since server start — the registry's 'cycle'."""
        return int((time.monotonic() - self._start_s) * 1e6)

    def _histogram(self, model: str, phase: str) -> LatencyHistogram:
        phases = self._histograms.setdefault(model, {})
        hist = phases.get(phase)
        if hist is None:
            hist = phases[phase] = LatencyHistogram()
        return hist

    def histogram_snapshot(self) -> dict[str, dict[str, LatencyHistogram]]:
        """Consistent copies of every latency histogram (model x phase)."""
        with self._lock:
            return {
                model: {
                    phase: hist.copy() for phase, hist in phases.items()
                }
                for model, phases in self._histograms.items()
            }

    def _observe(self, outcome: BatchOutcome) -> None:
        """Pool callback: fold one batch into counters and spans."""
        us = self._now_us()
        model = outcome.batch.model
        unit = f"serve:{model}"
        reg = self.registry
        n = len(outcome.batch.requests)
        requeued_ids = {r.id for r in outcome.requeued}
        # requests re-enqueued for retry are neither completed nor
        # failed — they come back through a later batch's outcome
        final = [
            r for r in outcome.batch.requests if r.id not in requeued_ids
        ]
        with self._lock:
            if outcome.ok:
                self._completed += n
                reg.count(unit, "requests_ok", us, n)
            else:
                if requeued_ids:
                    self._retried += len(requeued_ids)
                    reg.count(
                        unit, "requests_retried", us, len(requeued_ids)
                    )
                if final:
                    self._failed += len(final)
                    reg.count(unit, "requests_failed", us, len(final))
            if outcome.degraded:
                reg.count(unit, "degraded_batches", us, 1)
            total_hist = self._histogram(model, "total")
            queue_hist = self._histogram(model, "queue")
            for request in final:
                total_hist.record(request.timing.total_s)
                queue_hist.record(request.timing.queue_s)
            reg.count(unit, "batches", us, 1)
            reg.count(unit, f"trigger_{outcome.batch.trigger}", us, 1)
            reg.count(unit, "batched_requests", us, n)
            reg.count(unit, "cache_hits", us, outcome.stats.cache_hits)
            reg.count(unit, "cache_misses", us, outcome.stats.cache_misses)
            reg.count(unit, "chip_cycles", us, outcome.stats.cycles)
            reg.count(
                unit, "compile_us", us, int(outcome.stats.compile_s * 1e6)
            )
            reg.count(
                unit, "execute_us", us, int(outcome.stats.execute_s * 1e6)
            )
            reg.mark_high("serve", "batch_size_high", n)
            reg.mark_high("serve", "queue_depth_high", self.batcher.depth_high)
            for request in final:
                self.slo.observe(
                    model, request.timing.total_s, us, ok=outcome.ok
                )
            if self.record_spans:
                start_us = int(
                    (outcome.started_s - self._start_s) * 1e6
                )
                dur_us = max(
                    int((outcome.finished_s - outcome.started_s) * 1e6), 1
                )
                if len(self.spans) == self.max_spans:
                    self.spans_dropped += 1
                    reg.count("serve", "spans_dropped", us, 1)
                self.spans.append(
                    HostSpan(
                        track=outcome.worker,
                        name=(
                            f"{model} "
                            f"batch{outcome.batch.id} x{n}"
                        ),
                        start_us=start_us,
                        dur_us=dur_us,
                        args={
                            "trigger": outcome.batch.trigger,
                            "ok": outcome.ok,
                            "cycles": outcome.stats.cycles,
                            "cache_hits": outcome.stats.cache_hits,
                            "cache_misses": outcome.stats.cache_misses,
                        },
                    )
                )
        if self.tracer is not None:
            self._trace_requests(outcome)

    def _observe_health(self, event: dict) -> None:
        """Pool callback: count quarantine/repair/degraded transitions."""
        us = self._now_us()
        with self._lock:
            self.registry.count("serve", f"health_{event['kind']}", us, 1)
            self.health_events.append(dict(event))

    def _trace_requests(self, outcome: BatchOutcome) -> None:
        """Record each request's root + queue-wait spans, linked to the
        batch span the pool worker recorded (``args["batch_span"]``)."""
        tracer = self.tracer
        for request in outcome.batch.requests:
            start_us = tracer.us_of(request.timing.submitted_s)
            end_us = tracer.us_of(
                request.timing.completed_s or outcome.finished_s
            )
            root = tracer.record(
                "request",
                "requests",
                start_us,
                end_us,
                request_id=request.id,
                batch_id=outcome.batch.id,
                model=outcome.batch.model,
                args={
                    "batch_span": outcome.span_id,
                    "worker": outcome.worker,
                    "ok": outcome.ok,
                },
            )
            dispatched_s = (
                request.timing.dispatched_s or outcome.started_s
            )
            tracer.record(
                "queue_wait",
                "requests",
                start_us,
                tracer.us_of(dispatched_s),
                parent_id=root.id,
                request_id=request.id,
                batch_id=outcome.batch.id,
                model=outcome.batch.model,
            )

    # ------------------------------------------------------------------
    def submit(
        self,
        model: str,
        payload: np.ndarray,
        deadline_s: float | None = None,
        priority: int = 0,
    ) -> ServeFuture:
        """Enqueue one request; returns a future to block on.

        ``deadline_s`` is a *relative* latency budget (absolute deadline
        = now + budget; defaults to the pool retry policy's
        ``default_deadline_s``): the retry machinery only re-enqueues a
        failed request while the budget has an estimated batch latency of
        slack, and admission control sheds the most deadline-hopeless,
        lowest-``priority`` requests first when quarantines shrink pool
        capacity.
        """
        served = self.models.get(model)
        if served is None:
            raise ServeError(
                f"unknown model {model!r}; registered: "
                f"{sorted(self.models)}"
            )
        payload = np.asarray(payload, dtype=np.float64)
        served.validate(payload)
        now = time.monotonic()
        budget = (
            deadline_s if deadline_s is not None
            else self.pool.retry.default_deadline_s
        )
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        request = InferenceRequest(
            id=request_id,
            model=model,
            payload=payload,
            timing=RequestTiming(submitted_s=now),
            deadline_s=None if budget is None else now + budget,
            priority=priority,
        )
        self._admit(request, now)
        try:
            self.batcher.submit(request)
        except ServeError:
            # rejected before entering the queue — an SLO shed
            self.slo.shed(model, self._now_us())
            raise
        # sample queue depth on every submit, not just at batch
        # completion — peaks between batches are exactly the interesting
        # ones for admission control
        with self._lock:
            self.registry.mark_high(
                "serve", "queue_depth_high", self.batcher.depth_high
            )
        return request.future

    def _admit(self, request: InferenceRequest, now: float) -> None:
        """Capacity-aware admission control at the submit edge.

        At full capacity every request queues.  When quarantines shrink
        the pool, the queue is capped at ``shed_factor`` batches per
        surviving worker; past that, the least valuable request — lowest
        priority, then smallest deadline slack — is shed with a distinct
        ``shed`` outcome.  That victim is usually an already-queued
        request (its future fails immediately); when the newcomer itself
        is the least valuable, :meth:`submit` raises instead.
        """
        capacity = self.pool.capacity()
        if capacity >= len(self.pool.workers):
            return
        policy = self.batcher.policy_for(request.model)
        limit = self.shed_factor * capacity * policy.max_batch
        if self.batcher.depth() < limit:
            return
        us = self._now_us()
        victim = self.batcher.shed_victim(
            request.priority, request.slack_s(now), now
        )
        if victim is None:
            victim = request
        with self._lock:
            self._shed += 1
            self.registry.count(
                f"serve:{victim.model}", "requests_shed_capacity", us, 1
            )
        self.slo.shed(victim.model, us)
        error = RequestError(
            f"request {victim.id} ({victim.model}) shed: pool capacity "
            f"{capacity}/{len(self.pool.workers)}, queue over "
            f"{limit} requests",
            outcome="shed",
            attempt=victim.attempt,
        )
        if victim is request:
            raise error
        victim.timing.completed_s = now
        victim.future.set_error(error)

    def run(
        self, model: str, payload: np.ndarray, timeout: float = 60.0
    ) -> InferenceResult:
        """Submit one request and block for its result."""
        return self.submit(model, payload).result(timeout=timeout)

    def sequential_reference(
        self, model: str, payload: np.ndarray
    ) -> np.ndarray:
        """The unbatched, uncached, fresh-chip oracle for one payload."""
        served = self.models.get(model)
        if served is None:
            raise ServeError(f"unknown model {model!r}")
        return served.run_reference(np.asarray(payload, dtype=np.float64))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One JSON-able rollup: requests, latency quantiles, cache, pool.

        Latency quantiles come from the bounded histograms — upper
        bounds within ``1/sub_buckets`` of exact — so a long-running
        server's stats cost never grows with traffic.
        """
        with self._lock:
            latency = {
                model: {
                    **phases["total"].stats_ms(),
                    "queue_p99_ms": round(
                        phases["queue"].quantile(0.99) * 1e3, 3
                    ),
                }
                for model, phases in self._histograms.items()
            }
            completed, failed = self._completed, self._failed
            retried, shed = self._retried, self._shed
            submitted = self._next_request_id
            spans = {
                "recorded": len(self.spans),
                "dropped": self.spans_dropped,
                "max_spans": self.max_spans,
            }
        return {
            "requests": {
                "submitted": submitted,
                "completed": completed,
                "failed": failed,
                "retried": retried,
                "shed": shed,
            },
            "latency": latency,
            "slo": self.slo.snapshot(),
            "spans": spans,
            "tracing": (
                self.tracer.snapshot() if self.tracer is not None else None
            ),
            "cache": self.cache.snapshot(),
            "batcher": {
                "released": dict(self.batcher.released),
                "depth_high": self.batcher.depth_high,
            },
            "pool": {
                "workers": len(self.pool.workers),
                "alive": self.pool.alive,
                "capacity": self.pool.capacity(),
                "quarantined": len(self.pool.active_quarantined),
                "quarantines_total": len(self.pool.quarantined),
                "repaired": self.pool.repaired_count,
                "spares": self.pool.n_spares,
                "states": {
                    w.name: w.state for w in self.pool.workers
                },
                "batches_run": sum(
                    w.batches_run for w in self.pool.workers
                ),
                "batches_failed": sum(
                    w.batches_failed for w in self.pool.workers
                ),
            },
        }
