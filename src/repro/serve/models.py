"""Servable model adapters.

A :class:`ServeModel` turns a list of request payloads into a list of
outputs, with every multiply running on a (pooled) simulated chip through
the compiled-program cache.  Two adapters cover the initial workloads:

* :class:`CnnServeModel` — the :mod:`repro.nn.tsp_inference` CNN path;
  requests are single images, batched along the vector dimension.
* :class:`TransformerMlpServeModel` — the static-weight matmuls of an
  :mod:`repro.nn.transformer` decode step (the FFN up/down projections,
  per-token), the batch-1 token stream "Answer Fast" serves on real TSPs;
  requests are single ``d_model`` token vectors.

The serving contract both honour: batching happens along the MXM's
vector-index dimension, where per-row results are independent, so a
batched forward restricted to one request's rows is bit-identical to
running that request alone (:meth:`ServeModel.run_reference` — the
differential oracle of the serve test suite).
"""

from __future__ import annotations

import numpy as np

from ..config import ArchConfig
from ..errors import ServeError
from ..nn.layers import Dense, ReLU
from ..nn.model import Sequential
from ..nn.scaleout import execute_pipeline, plan_runner_partition
from ..nn.transformer import TransformerConfig
from ..nn.tsp_inference import ChunkRunStats, TspCnnRunner


class ServeModel:
    """One named, servable workload."""

    name: str
    #: expected payload shape, for submission-time validation
    payload_shape: tuple[int, ...]
    #: chips this model needs per batch; a pool worker hands models with
    #: ``n_chips > 1`` its whole :class:`~repro.sim.MultiChipSystem`
    #: instead of a single chip
    n_chips: int = 1

    def validate(self, payload: np.ndarray) -> None:
        if tuple(payload.shape) != self.payload_shape:
            raise ServeError(
                f"model {self.name!r} expects payload shape "
                f"{self.payload_shape}, got {tuple(payload.shape)}"
            )

    def run_batch(
        self, chip, cache, payloads: list[np.ndarray],
        stats: ChunkRunStats | None = None,
        blacklist=None,
    ) -> list[np.ndarray]:
        """Execute one batch; returns one output per payload, in order.

        ``blacklist`` (a :class:`repro.resil.Blacklist`, or None) is the
        degraded-serving contract: the adapter must compile every program
        through the cache with it, so a worker with dead hardware serves
        bit-identical results on what remains.  The pool only passes it
        when non-empty, so adapters that never degrade may ignore it.
        """
        raise NotImplementedError

    def run_reference(self, payload: np.ndarray) -> np.ndarray:
        """Sequential unbatched oracle: one request, fresh chip, no cache."""
        raise NotImplementedError


class _RunnerServeModel(ServeModel):
    """Shared plumbing: any model expressible as a TspCnnRunner pipeline."""

    def __init__(
        self,
        name: str,
        model: Sequential,
        config: ArchConfig,
        calibration: np.ndarray,
        payload_shape: tuple[int, ...],
        max_vectors_per_program: int = 64,
    ) -> None:
        self.name = name
        self.payload_shape = payload_shape
        self.config = config
        # the runner is immutable after lowering (quantized weights and
        # scales only), so one instance is shared by every pool worker
        self.runner = TspCnnRunner(
            model, config, calibration,
            max_vectors_per_program=max_vectors_per_program,
        )

    def run_batch(
        self, chip, cache, payloads: list[np.ndarray],
        stats: ChunkRunStats | None = None,
        blacklist=None,
    ) -> list[np.ndarray]:
        x = np.stack(payloads)
        result = self.runner.forward(
            x, chip=chip, cache=cache, stats=stats, blacklist=blacklist
        )
        return [result.logits[i] for i in range(len(payloads))]

    def run_reference(self, payload: np.ndarray) -> np.ndarray:
        return self.runner.forward(payload[None]).logits[0]


class CnnServeModel(_RunnerServeModel):
    """Serve a host-trained CNN through the Section IV deployment path."""

    def __init__(
        self,
        name: str,
        model: Sequential,
        config: ArchConfig,
        calibration: np.ndarray,
        max_vectors_per_program: int = 64,
    ) -> None:
        super().__init__(
            name, model, config, calibration,
            payload_shape=tuple(calibration.shape[1:]),
            max_vectors_per_program=max_vectors_per_program,
        )


class ShardedCnnServeModel(CnnServeModel):
    """A CNN pipeline-partitioned across a ring of chips.

    The executed scale-out path of :mod:`repro.nn.scaleout` behind the
    standard serving contract: ``run_batch`` receives a whole
    :class:`~repro.sim.MultiChipSystem` (the pool worker checks out and
    scrubs every chip of it), runs each partition stage on its own chip,
    and forwards activations between stages over compiler-scheduled C2C
    transfers.  The partition is planned once at registration; its
    fingerprint keys every partition-dependent cache entry, and
    ``run_reference`` stays the *single-chip* oracle — the differential
    property the serve tests check is exactly the tentpole bit-exactness
    claim.
    """

    def __init__(
        self,
        name: str,
        model: Sequential,
        config: ArchConfig,
        calibration: np.ndarray,
        n_chips: int,
        max_vectors_per_program: int = 64,
    ) -> None:
        if n_chips < 2:
            raise ServeError(
                "a sharded model needs n_chips >= 2; use CnnServeModel "
                "for single-chip serving"
            )
        super().__init__(
            name, model, config, calibration,
            max_vectors_per_program=max_vectors_per_program,
        )
        self.n_chips = n_chips
        # plan eagerly: registering a model too shallow for the ring is
        # a ConfigError at construction, not at the first request
        self.plan = plan_runner_partition(self.runner, n_chips)

    def run_batch(
        self, system, cache, payloads: list[np.ndarray],
        stats: ChunkRunStats | None = None,
        blacklist=None,
    ) -> list[np.ndarray]:
        x = np.stack(payloads)
        result = execute_pipeline(
            self.runner, x, self.n_chips,
            system=system, cache=cache, stats=stats, plan=self.plan,
            blacklist=blacklist,
        )
        return [result.logits[i] for i in range(len(payloads))]


class TransformerMlpServeModel(_RunnerServeModel):
    """The decode-step FFN of a transformer layer, one token per request.

    ``d_model -> d_ff -> ReLU -> d_model`` with layer-symmetric int8
    quantization — the static-weight portion of
    :func:`repro.nn.transformer.decode_layers`' per-layer work, which
    dominates decode FLOPs.  Weights are seeded deterministically from
    the transformer configuration.
    """

    def __init__(
        self,
        name: str,
        transformer: TransformerConfig,
        config: ArchConfig,
        seed: int = 0,
        calibration: np.ndarray | None = None,
        max_vectors_per_program: int = 64,
    ) -> None:
        transformer.validate()
        d, d_ff = transformer.d_model, transformer.d_ff
        lanes = config.n_lanes
        # K dimensions tile across activations, but each matmul's output
        # width M must fit one plane (the runner does not M-tile)
        if d > lanes or d_ff > lanes:
            raise ServeError(
                f"transformer dims ({d}, {d_ff}) exceed the {lanes}-lane "
                "plane width of the serving chip; shrink the config"
            )
        rng = np.random.default_rng(seed)
        model = Sequential([
            Dense(d, d_ff, rng=np.random.default_rng(seed + 1)),
            ReLU(),
            Dense(d_ff, d, rng=np.random.default_rng(seed + 2)),
        ])
        if calibration is None:
            calibration = rng.standard_normal((32, d)).astype(np.float64)
        self.transformer = transformer
        super().__init__(
            name, model, config, calibration,
            payload_shape=(d,),
            max_vectors_per_program=max_vectors_per_program,
        )
