"""Inference serving on simulated TSP chips.

The deployment loop of the paper's Section IV workloads: a deadline-aware
dynamic batcher, a content-addressed cache of compiled stream programs
(compile once per shape, replay forever — the TSP's determinism makes the
binary a pure function of graph + config), and a pool of simulated chips
drained by worker threads, with per-request queue/compile/execute latency
accounting exported through :mod:`repro.obs`.

Quickstart::

    from repro.serve import InferenceServer, CnnServeModel, BatchPolicy

    server = InferenceServer(config, [model], n_workers=2)
    future = server.submit("cnn", image)
    result = future.result()          # InferenceResult: output + timing
    server.close()

or ``python -m repro.serve`` for a self-contained demo.
"""

from ..errors import RequestError
from .batcher import DynamicBatcher
from .cache import CacheStats, ProgramCache
from .models import (
    CnnServeModel,
    ServeModel,
    ShardedCnnServeModel,
    TransformerMlpServeModel,
)
from .pool import BatchOutcome, ChipPool, PoolWorker
from .request import (
    Batch,
    BatchPolicy,
    InferenceRequest,
    InferenceResult,
    RequestTiming,
    ServeFuture,
)
from .resilient import (
    Diagnosis,
    HealthPolicy,
    LatencyEstimator,
    QuarantineRecord,
    RetryPolicy,
    diagnose,
)
from .server import InferenceServer

__all__ = [
    "Batch",
    "BatchOutcome",
    "BatchPolicy",
    "CacheStats",
    "ChipPool",
    "CnnServeModel",
    "Diagnosis",
    "DynamicBatcher",
    "HealthPolicy",
    "InferenceRequest",
    "InferenceResult",
    "InferenceServer",
    "LatencyEstimator",
    "PoolWorker",
    "ProgramCache",
    "QuarantineRecord",
    "RequestError",
    "RequestTiming",
    "RetryPolicy",
    "ServeFuture",
    "ServeModel",
    "ShardedCnnServeModel",
    "TransformerMlpServeModel",
    "diagnose",
]
