"""Content-addressed LRU cache of compiled stream programs.

Scheduling is by far the most expensive step of the request path (the
two-dimensional time × space search of :mod:`repro.compiler.scheduler`),
and the TSP's determinism makes its output a pure function of the lowered
graph and the chip configuration.  :class:`ProgramCache` therefore keys
compiled binaries by :func:`repro.compiler.cachekey.graph_fingerprint`:
the first request of a (model, shape, dtype, batch) shape pays the
compile, every later request replays the cached program — recompiles
never block the hot path twice.

Thread-safe with single-flight compilation: when several workers miss on
the same key simultaneously, one compiles and the rest wait for its
result instead of duplicating the scheduler run.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..compiler.cachekey import graph_fingerprint
from ..compiler.scheduler import CompiledProgram
from ..obs import rtrace


def _span(ctx, name: str, start_us: float, key: str, **args) -> None:
    """Record one cache-phase span under the ambient batch context."""
    ctx.tracer.record_under(
        ctx, name, start_us, ctx.tracer.now_us(),
        args={"key": key[:16], **args},
    )


@dataclass
class CacheStats:
    """Hit/miss/evict counters, exported through the serve registry."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _InFlight:
    """One key's pending compile: waiters park on the event."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.program: CompiledProgram | None = None
        self.error: BaseException | None = None


class ProgramCache:
    """LRU over content-addressed compiled programs."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._programs: OrderedDict[str, CompiledProgram] = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._programs

    # ------------------------------------------------------------------
    def get(self, key: str) -> CompiledProgram | None:
        """LRU lookup by fingerprint; counts a hit or miss."""
        with self._lock:
            program = self._programs.get(key)
            if program is None:
                self.stats.misses += 1
                return None
            self._programs.move_to_end(key)
            self.stats.hits += 1
            return program

    def put(self, key: str, program: CompiledProgram) -> None:
        """Insert (or refresh) one compiled program, evicting LRU overflow."""
        with self._lock:
            self._insert(key, program)

    def _insert(self, key: str, program: CompiledProgram) -> None:
        self._programs[key] = program
        self._programs.move_to_end(key)
        while len(self._programs) > self.capacity:
            self._programs.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def get_or_compile(
        self, builder, blacklist=None
    ) -> tuple[CompiledProgram, str, bool, float]:
        """Fingerprint ``builder``'s graph; compile only on a true miss.

        Returns ``(program, key, hit, compile_seconds)``.  ``hit`` is True
        whenever this caller did not run the scheduler itself — including
        waiters coalesced onto another thread's in-flight compile.  The
        scheduler runs outside the cache lock, so a long compile never
        stalls unrelated lookups.
        """
        ctx = rtrace.current()
        lookup_us = ctx.tracer.now_us() if ctx is not None else 0.0
        key = graph_fingerprint(
            builder.graph, builder.config,
            timing=builder.timing, blacklist=blacklist,
        )
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self._programs.move_to_end(key)
                self.stats.hits += 1
                if ctx is not None:
                    _span(ctx, "cache", lookup_us, key, hit=True)
                return program, key, True, 0.0
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _InFlight()
        if not leader:
            flight.done.wait()
            if ctx is not None:
                # coalesced onto another thread's single-flight compile
                _span(ctx, "compile_wait", lookup_us, key)
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.stats.hits += 1
            assert flight.program is not None
            return flight.program, key, True, 0.0
        if ctx is not None:
            _span(ctx, "cache", lookup_us, key, hit=False)
        compile_us = ctx.tracer.now_us() if ctx is not None else 0.0
        t0 = time.perf_counter()
        try:
            program = builder.compile(blacklist=blacklist)
        except BaseException as error:
            flight.error = error
            with self._lock:
                del self._inflight[key]
            flight.done.set()
            raise
        compile_s = time.perf_counter() - t0
        if ctx is not None:
            _span(ctx, "compile", compile_us, key)
        with self._lock:
            self.stats.misses += 1
            self.stats.compile_s += compile_s
            self._insert(key, program)
            del self._inflight[key]
        flight.program = program
        flight.done.set()
        return program, key, False, compile_s

    # ------------------------------------------------------------------
    def get_or_build(self, key: str, factory):
        """Cache an arbitrary keyed artifact alongside compiled programs.

        The generic entry for partition-dependent artifacts — above all
        the timed C2C transfer programs of an executed pipeline, whose
        ``key`` folds in the :class:`~repro.compiler.PartitionPlan`
        fingerprint so no split ever replays another's schedules.
        ``factory`` runs outside the lock; a racing duplicate build is
        tolerated (transfer planning is cheap — single-flight is reserved
        for scheduler runs in :meth:`get_or_compile`).
        """
        ctx = rtrace.current()
        lookup_us = ctx.tracer.now_us() if ctx is not None else 0.0
        with self._lock:
            value = self._programs.get(key)
            if value is not None:
                self._programs.move_to_end(key)
                self.stats.hits += 1
                if ctx is not None:
                    _span(ctx, "cache", lookup_us, key, hit=True)
                return value
        value = factory()
        with self._lock:
            self.stats.misses += 1
            self._insert(key, value)
        if ctx is not None:
            _span(ctx, "build", lookup_us, key)
        return value

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters + residency, for ``BENCH_serve.json`` and stats()."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "resident": len(self._programs),
                # programs that have recorded a schedule-replay plan
                # (repro.sim.replay) and serve cache hits without the
                # event-driven simulator
                "replay_plans": sum(
                    1
                    for p in self._programs.values()
                    if getattr(getattr(p, "replay", None), "ok", False)
                ),
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "hit_rate": round(self.stats.hit_rate, 4),
                "compile_s": round(self.stats.compile_s, 6),
            }
