"""A worker pool of simulated TSP chips.

Each worker thread owns one :class:`~repro.sim.chip.TspChip` — or, when
the pool is sized with ``n_chips > 1``, a whole
:meth:`~repro.sim.MultiChipSystem.ring` for pipeline-sharded models —
and loops: pull a batch from the
:class:`~repro.serve.batcher.DynamicBatcher`, check the hardware out (a
full :meth:`~repro.sim.chip.TspChip.scrub` of every chip, so no tenant's
SRAM, trace, telemetry, or armed watchdog leaks between requests),
execute the batch through the model adapter and the compiled-program
cache, and resolve every request's future.

Failure containment: a fault during a batch — an injected SRAM error, a
watchdog deadline, a scheduler bug — fails *only that batch's* requests,
each with the chip/cycle context the simulator attached, then scrubs the
chip and keeps serving.  Futures are resolved on every path, so a caller
can never deadlock on a dead batch, and the batcher queue keeps draining.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..config import ArchConfig
from ..errors import ServeError, TspError
from ..nn.tsp_inference import ChunkRunStats
from ..obs import rtrace
from ..sim.chip import TspChip
from ..sim.multichip import MultiChipSystem
from .batcher import DynamicBatcher
from .cache import ProgramCache
from .models import ServeModel
from .request import Batch, InferenceResult


@dataclass
class BatchOutcome:
    """What one executed batch reports up to the server."""

    batch: Batch
    worker: str
    ok: bool
    stats: ChunkRunStats = field(default_factory=ChunkRunStats)
    error: BaseException | None = None
    started_s: float = 0.0
    finished_s: float = 0.0
    #: the batch's span id in the request tracer (None when tracing off) —
    #: the linkage request root spans point at via args["batch_span"]
    span_id: int | None = None


class PoolWorker(threading.Thread):
    """One chip-owning worker thread."""

    def __init__(self, pool: "ChipPool", index: int) -> None:
        super().__init__(name=f"tsp-serve-worker{index}", daemon=True)
        self.pool = pool
        self.index = index
        if pool.n_chips > 1:
            # the worker owns a whole ring; sharded models get the
            # system, single-chip models run on its first chip
            self.system: MultiChipSystem | None = MultiChipSystem.ring(
                pool.config, pool.n_chips, **pool.chip_kwargs
            )
            for c, chip in enumerate(self.system.chips):
                chip.chip_id = f"pool{index}.c{c}"
            self.chip = self.system.chips[0]
        else:
            self.system = None
            self.chip = TspChip(
                pool.config, chip_id=f"pool{index}", **pool.chip_kwargs
            )
        self.batches_run = 0
        self.batches_failed = 0
        #: one-shot checkout hooks (fault injection, test instrumentation)
        self._checkout_hooks: list = []
        self._hook_lock = threading.Lock()

    # ------------------------------------------------------------------
    def inject_at_checkout(self, hook) -> None:
        """Run ``hook(chip_or_system)`` at the next checkout, once.

        The deterministic way to aim a fault at a pooled chip: the hook
        runs after the scrub, immediately before the batch executes — how
        the resilience negative tests arm watchdogs and inject faults
        without racing the worker loop.  Single-chip workers pass their
        :class:`TspChip`; multi-chip workers pass the whole
        :class:`~repro.sim.MultiChipSystem` so a hook can target any
        chip or link of the ring.
        """
        with self._hook_lock:
            self._checkout_hooks.append(hook)

    def _scrub(self) -> None:
        """Factory-reset the worker's hardware between tenants.

        Across a whole system, scrub also detaches injected link error
        models: :meth:`~repro.sim.c2c.C2cUnit.scrub` keeps them (channel
        configuration on a fixed deployment), but a pooled ring is
        re-tenanted per batch — a dead link injected against one batch
        must not poison the next tenant's transfers.
        """
        if self.system is not None:
            self.system.scrub()
            self.system.clear_error_models()
        else:
            self.chip.scrub()

    def _checkout(self) -> None:
        self._scrub()
        with self._hook_lock:
            hooks, self._checkout_hooks = self._checkout_hooks, []
        target = self.system if self.system is not None else self.chip
        for hook in hooks:
            hook(target)

    # ------------------------------------------------------------------
    def run(self) -> None:
        while True:
            batch = self.pool.batcher.next_batch()
            if batch is None:
                return
            self.pool.execute_batch(self, batch)

    def execute(self, batch: Batch) -> BatchOutcome:
        """Check out the chip, run one batch, resolve its futures.

        With a tracer attached, the worker opens one batch-scoped
        :class:`~repro.obs.rtrace.TraceContext` and installs it as the
        ambient context for the duration of the run — the cache, the
        chunk executor, and the ring-transfer path record their
        cache / compile / execute / stage / transfer child spans against
        it without any signature change.
        """
        outcome = BatchOutcome(
            batch=batch, worker=self.name, ok=False,
            started_s=time.monotonic(),
        )
        tracer = self.pool.tracer
        ctx = token = None
        if tracer is not None:
            outcome.span_id = tracer.next_id()
            ctx = rtrace.TraceContext(
                tracer=tracer,
                span_id=outcome.span_id,
                batch_id=batch.id,
                model=batch.model,
                worker=self.name,
            )
            token = rtrace.push(ctx)
            start_us = tracer.us_of(outcome.started_s)
            oldest_us = tracer.us_of(
                min(r.timing.submitted_s for r in batch.requests)
            )
            tracer.record_under(
                ctx, "batch_form", oldest_us, start_us,
                args={"trigger": batch.trigger, "n": len(batch.requests)},
            )
        try:
            outputs = self._run_traced(batch, outcome, tracer, ctx)
        except BaseException as error:  # resolve futures on every path
            outcome.error = error
            outcome.finished_s = time.monotonic()
            self.batches_failed += 1
            for request in batch.requests:
                request.timing.completed_s = outcome.finished_s
                request.future.set_error(error)
            # faulted hardware may hold arbitrary state; scrub now so the
            # worker is immediately serviceable for the next batch
            try:
                self._scrub()
            except Exception:
                pass
            self._finish_trace(outcome, tracer, token)
            return outcome
        outcome.ok = True
        n = len(batch.requests)
        respond_start = time.monotonic()
        outcome.finished_s = respond_start
        self.batches_run += 1
        for request in batch.requests:
            request.timing.completed_s = outcome.finished_s
            request.timing.compile_s = outcome.stats.compile_s / n
            request.timing.execute_s = outcome.stats.execute_s / n
        for request, output in zip(batch.requests, outputs):
            request.future.set_result(
                InferenceResult(
                    request_id=request.id,
                    model=batch.model,
                    output=output,
                    timing=request.timing,
                    batch_id=batch.id,
                    batch_size=n,
                    worker=self.name,
                    cycles=outcome.stats.cycles,
                    cache_hits=outcome.stats.cache_hits,
                    cache_misses=outcome.stats.cache_misses,
                )
            )
        if tracer is not None:
            tracer.record_under(
                ctx, "respond",
                tracer.us_of(respond_start), tracer.now_us(),
                args={"n": n},
            )
        self._finish_trace(outcome, tracer, token)
        return outcome

    def _run_traced(self, batch, outcome, tracer, ctx):
        """Checkout + model run, with checkout timed when tracing."""
        if tracer is not None:
            t0 = tracer.now_us()
            self._checkout()
            tracer.record_under(ctx, "checkout", t0, tracer.now_us())
        else:
            self._checkout()
        model = self.pool.model(batch.model)
        payloads = [r.payload for r in batch.requests]
        target = (
            self.system
            if self.system is not None
            and getattr(model, "n_chips", 1) > 1
            else self.chip
        )
        outputs = model.run_batch(
            target, self.pool.cache, payloads, stats=outcome.stats
        )
        if len(outputs) != len(batch.requests):
            raise TspError(
                f"model {batch.model!r} returned {len(outputs)} "
                f"outputs for {len(batch.requests)} requests"
            )
        return outputs

    def _finish_trace(self, outcome, tracer, token) -> None:
        """Record the enclosing batch span and drop the ambient context."""
        if tracer is None:
            return
        rtrace.pop(token)
        batch = outcome.batch
        tracer.record(
            f"batch {batch.model}#{batch.id}",
            self.name,
            tracer.us_of(outcome.started_s),
            tracer.us_of(outcome.finished_s),
            span_id=outcome.span_id,
            batch_id=batch.id,
            model=batch.model,
            args={
                "trigger": batch.trigger,
                "ok": outcome.ok,
                "requests": [r.id for r in batch.requests],
                "cycles": outcome.stats.cycles,
            },
        )


class ChipPool:
    """N simulated chips draining one dynamic batcher."""

    def __init__(
        self,
        config: ArchConfig,
        models: list[ServeModel],
        batcher: DynamicBatcher,
        cache: ProgramCache,
        n_workers: int = 2,
        n_chips: int = 1,
        chip_kwargs: dict | None = None,
        on_outcome=None,
        tracer=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("a pool needs at least one worker")
        if n_chips < 1:
            raise ValueError("a worker needs at least one chip")
        self.config = config
        self.batcher = batcher
        self.cache = cache
        self.n_chips = n_chips
        self.chip_kwargs = dict(chip_kwargs or {})
        #: optional RequestTracer workers record batch-scoped spans into
        self.tracer = tracer
        self._models = {m.name: m for m in models}
        for m in models:
            if getattr(m, "n_chips", 1) > n_chips:
                raise ServeError(
                    f"model {m.name!r} needs {m.n_chips} chips per batch "
                    f"but each pool worker owns only {n_chips}"
                )
        #: observer called with every BatchOutcome (the server's obs hook)
        self.on_outcome = on_outcome
        self.workers = [PoolWorker(self, i) for i in range(n_workers)]
        self._started = False

    def model(self, name: str) -> ServeModel:
        try:
            return self._models[name]
        except KeyError:
            raise TspError(f"no model {name!r} registered with the pool")

    # ------------------------------------------------------------------
    def execute_batch(self, worker: PoolWorker, batch: Batch) -> None:
        outcome = worker.execute(batch)
        if self.on_outcome is not None:
            try:
                self.on_outcome(outcome)
            except Exception:
                pass  # observability must never kill a worker

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            for worker in self.workers:
                worker.start()

    def join(self, timeout: float | None = None) -> None:
        """Wait for workers to exit (the batcher must be closed first)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in self.workers:
            if not worker.is_alive():
                continue
            remaining = (
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            worker.join(remaining)

    @property
    def alive(self) -> int:
        return sum(1 for w in self.workers if w.is_alive())
