"""A self-healing worker pool of simulated TSP chips.

Each worker thread owns one :class:`~repro.sim.chip.TspChip` — or, when
the pool is sized with ``n_chips > 1``, a whole
:meth:`~repro.sim.MultiChipSystem.ring` for pipeline-sharded models —
and loops: pull a batch from the
:class:`~repro.serve.batcher.DynamicBatcher`, check the hardware out (a
full :meth:`~repro.sim.chip.TspChip.scrub` of every chip, so no tenant's
SRAM, trace, telemetry, or armed watchdog leaks between requests),
execute the batch through the model adapter and the compiled-program
cache, and resolve every request's future.

Failure containment is now a closed loop, not just isolation:

* **Retry with deadline budget** — a retryable (hardware) failure
  re-enqueues the batch's requests at the queue head with a bumped
  attempt counter, as long as each request's deadline still has one
  estimated batch latency of slack; otherwise the request dies with a
  distinct ``retryable_exhausted`` :class:`~repro.errors.RequestError`
  carrying chip/cycle/attempt context.
* **Quarantine and repair** — workers poll a
  :class:`~repro.resil.HealthMonitor` between batches (ECC corrections,
  FEC/retry counters, verdicts) and strike on transient failures;
  over-threshold hardware moves to a quarantine set, the worker swaps in
  a spare or parks, and a background repair loop (scrub + N clean probe
  sweeps) returns hardware to service.
* **Degraded-mode serving** — a failure localizable to a
  :class:`~repro.resil.Blacklist` (dead MEM slice, dead MXM plane, dark
  ring cable) keeps the chip serving: the worker recompiles every model
  through the blacklist-aware program cache and periodically re-probes
  the dead resource, un-degrading when it recovers.

Futures are resolved on every path, so a caller can never deadlock on a
dead batch, and the batcher queue keeps draining.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..config import ArchConfig
from ..errors import RequestError, ServeError, TspError
from ..nn.tsp_inference import ChunkRunStats
from ..obs import rtrace
from ..resil.degrade import Blacklist, blacklist_from_fault
from ..resil.health import HealthMonitor
from ..sim.chip import TspChip
from ..sim.multichip import MultiChipSystem
from .batcher import DynamicBatcher
from .cache import ProgramCache
from .models import ServeModel
from .request import Batch, InferenceRequest, InferenceResult
from .resilient import (
    HealthPolicy,
    LatencyEstimator,
    QuarantineRecord,
    RetryPolicy,
    blacklist_recovered,
    chip_index_of,
    diagnose,
    merge_blacklists,
    probe_memory,
)


@dataclass
class BatchOutcome:
    """What one executed batch reports up to the server."""

    batch: Batch
    worker: str
    ok: bool
    stats: ChunkRunStats = field(default_factory=ChunkRunStats)
    error: BaseException | None = None
    started_s: float = 0.0
    finished_s: float = 0.0
    #: the batch's span id in the request tracer (None when tracing off) —
    #: the linkage request root spans point at via args["batch_span"]
    span_id: int | None = None
    #: highest request attempt in the batch at execution time
    attempt: int = 0
    #: ring index of the chip a failure was localized to (None unknown)
    chip_index: int | None = None
    #: requests re-enqueued for retry instead of failed — the server must
    #: count these as retries, not completions or failures
    requeued: list = field(default_factory=list)
    #: served by a degraded worker (recompiled against its blacklist)
    degraded: bool = False


class PoolWorker(threading.Thread):
    """One chip-owning worker thread with a health state machine.

    ``state`` walks ``healthy -> degraded`` (localizable fault — keeps
    serving, recompiled) or ``healthy -> quarantined`` (transient strikes
    or a failed health poll — swaps in a spare or parks until repair
    hands hardware back).
    """

    def __init__(self, pool: "ChipPool", index: int) -> None:
        super().__init__(name=f"tsp-serve-worker{index}", daemon=True)
        self.pool = pool
        self.index = index
        self.system, self.chip = pool._build_hardware(f"pool{index}")
        self.batches_run = 0
        self.batches_failed = 0
        #: "healthy" | "degraded" | "quarantined"
        self.state = "healthy"
        #: consecutive transient failures since the last clean batch
        self.strikes = 0
        #: resources this worker's programs are recompiled around
        self.blacklist: Blacklist | None = None
        #: successful degraded batches since the last blacklist re-probe
        self._degraded_ok = 0
        #: unexpected exception that killed the worker thread, if any
        self.failure: BaseException | None = None
        self._exited = False
        #: one-shot checkout hooks (fault injection, test instrumentation)
        self._checkout_hooks: list = []
        self._hook_lock = threading.Lock()

    @property
    def hardware(self):
        """The system (multi-chip) or chip (single-chip) this worker owns."""
        return self.system if self.system is not None else self.chip

    def _install(self, system, chip, blacklist: Blacklist | None) -> None:
        """Swap in replacement hardware (a spare, or repaired hardware)."""
        self.system = system
        self.chip = chip
        self.blacklist = blacklist
        self._degraded_ok = 0
        self.strikes = 0

    # ------------------------------------------------------------------
    def inject_at_checkout(self, hook) -> None:
        """Run ``hook(chip_or_system)`` at the next checkout, once.

        The deterministic way to aim a fault at a pooled chip: the hook
        runs after the scrub, immediately before the batch executes — how
        the resilience negative tests arm watchdogs and inject faults
        without racing the worker loop.  Single-chip workers pass their
        :class:`TspChip`; multi-chip workers pass the whole
        :class:`~repro.sim.MultiChipSystem` so a hook can target any
        chip or link of the ring.  For faults that must *persist* across
        checkouts (and follow the hardware through quarantine and spare
        swaps), see :meth:`ChipPool.attach_hardware_fault`.
        """
        with self._hook_lock:
            self._checkout_hooks.append(hook)

    def _scrub(self) -> None:
        """Factory-reset the worker's hardware between tenants.

        Across a whole system, scrub also detaches injected link error
        models: :meth:`~repro.sim.c2c.C2cUnit.scrub` keeps them (channel
        configuration on a fixed deployment), but a pooled ring is
        re-tenanted per batch — a dead link injected against one batch
        must not poison the next tenant's transfers.
        """
        ChipPool.scrub_hardware(self.hardware)

    def _checkout(self) -> None:
        self._scrub()
        with self._hook_lock:
            hooks, self._checkout_hooks = self._checkout_hooks, []
        target = self.hardware
        hooks.extend(self.pool._faults_for(target))
        for hook in hooks:
            hook(target)
        if hooks:
            # a fault hook may perturb state the replay pristine check
            # cannot see (direct storage writes, armed timers) — force
            # real simulation for this checkout.  The next scrub clears
            # the flag along with the fault.
            for chip in getattr(target, "chips", [target]):
                chip.external_fault_hooks = True

    # ------------------------------------------------------------------
    def _health_flagged(self) -> str | None:
        """Poll the health monitor over the last batch's live counters.

        Runs between batches, *before* the next checkout scrubs the
        counters away — so the CSR corrections and link FEC/retry tallies
        it reads belong to the most recent tenant.  Returns a reason
        string when the hardware should be quarantined.
        """
        monitor = self.pool.health
        if monitor is None:
            return None
        threshold = self.pool.health_policy.wearout_threshold
        chips = (
            self.system.chips if self.system is not None else [self.chip]
        )
        for chip in chips:
            report = monitor.poll(chip)
            if report.verdict == "failed":
                return f"{chip.chip_id}: health verdict failed"
            if report.ecc_corrections >= threshold:
                return (
                    f"{chip.chip_id}: {report.ecc_corrections} ECC "
                    f"corrections >= wearout threshold {threshold}"
                )
            link_trouble = sum(
                lh.corrected + lh.retries for lh in report.links
            )
            if link_trouble >= threshold:
                return (
                    f"{chip.chip_id}: {link_trouble} link FEC "
                    f"corrections/retries >= threshold {threshold}"
                )
        return None

    # ------------------------------------------------------------------
    def run(self) -> None:
        try:
            while True:
                if self.state == "quarantined":
                    if not self.pool._park(self):
                        return
                    continue
                reason = self._health_flagged()
                if reason is not None:
                    self.pool.quarantine(self, reason=reason)
                    continue
                batch = self.pool.batcher.next_batch()
                if batch is None:
                    return
                self.pool.execute_batch(self, batch)
        except BaseException as failure:  # noqa: BLE001 — surfaced by join
            self.failure = failure
        finally:
            self._exited = True

    def execute(self, batch: Batch) -> BatchOutcome:
        """Check out the chip, run one batch, resolve its futures.

        With a tracer attached, the worker opens one batch-scoped
        :class:`~repro.obs.rtrace.TraceContext` and installs it as the
        ambient context for the duration of the run — the cache, the
        chunk executor, and the ring-transfer path record their
        cache / compile / execute / stage / transfer child spans against
        it without any signature change.
        """
        outcome = BatchOutcome(
            batch=batch, worker=self.name, ok=False,
            started_s=time.monotonic(),
            attempt=max((r.attempt for r in batch.requests), default=0),
        )
        tracer = self.pool.tracer
        ctx = token = None
        if tracer is not None:
            outcome.span_id = tracer.next_id()
            ctx = rtrace.TraceContext(
                tracer=tracer,
                span_id=outcome.span_id,
                batch_id=batch.id,
                model=batch.model,
                worker=self.name,
            )
            token = rtrace.push(ctx)
            start_us = tracer.us_of(outcome.started_s)
            oldest_us = tracer.us_of(
                min(r.timing.submitted_s for r in batch.requests)
            )
            tracer.record_under(
                ctx, "batch_form", oldest_us, start_us,
                args={"trigger": batch.trigger, "n": len(batch.requests)},
            )
        try:
            outputs = self._run_traced(batch, outcome, tracer, ctx)
        except BaseException as error:  # resolve futures on every path
            outcome.error = error
            outcome.finished_s = time.monotonic()
            self.batches_failed += 1
            diag = self.pool.handle_failure(self, batch, outcome, error)
            transition = self.pool.apply_diagnosis(self, diag, error)
            # faulted hardware may hold arbitrary state; scrub now so the
            # worker is immediately serviceable for the next batch
            try:
                self._scrub()
            except Exception:
                pass
            if tracer is not None:
                end_us = tracer.now_us()
                fail_us = tracer.us_of(outcome.finished_s)
                if outcome.requeued:
                    tracer.record_under(
                        ctx, "retry", fail_us, end_us,
                        args={
                            "n": len(outcome.requeued),
                            "attempt": outcome.attempt + 1,
                            "chip_index": outcome.chip_index,
                        },
                    )
                if transition is not None:
                    tracer.record_under(
                        ctx, transition, fail_us, end_us,
                        args={"reason": diag.reason},
                    )
            self._finish_trace(outcome, tracer, token)
            return outcome
        outcome.ok = True
        n = len(batch.requests)
        respond_start = time.monotonic()
        outcome.finished_s = respond_start
        self.batches_run += 1
        self.strikes = 0
        self.pool.latency.observe(
            batch.model, outcome.finished_s - outcome.started_s
        )
        for request in batch.requests:
            request.timing.completed_s = outcome.finished_s
            request.timing.compile_s = outcome.stats.compile_s / n
            request.timing.execute_s = outcome.stats.execute_s / n
        for request, output in zip(batch.requests, outputs):
            request.future.set_result(
                InferenceResult(
                    request_id=request.id,
                    model=batch.model,
                    output=output,
                    timing=request.timing,
                    batch_id=batch.id,
                    batch_size=n,
                    worker=self.name,
                    cycles=outcome.stats.cycles,
                    cache_hits=outcome.stats.cache_hits,
                    cache_misses=outcome.stats.cache_misses,
                )
            )
        if tracer is not None:
            tracer.record_under(
                ctx, "respond",
                tracer.us_of(respond_start), tracer.now_us(),
                args={"n": n},
            )
        self._finish_trace(outcome, tracer, token)
        self._maybe_recover(outcome)
        return outcome

    def _maybe_recover(self, outcome: BatchOutcome) -> None:
        """Degraded worker: periodically re-probe the blacklisted
        hardware; a recovered resource returns the worker to healthy."""
        if not outcome.degraded or self.blacklist is None:
            return
        self._degraded_ok += 1
        if self._degraded_ok < self.pool.health_policy.recheck_after:
            return
        self._degraded_ok = 0
        if blacklist_recovered(self.hardware, self.blacklist):
            self.blacklist = None
            self.state = "healthy"
            self.pool._emit("degraded_exit", worker=self.name)

    def _run_traced(self, batch, outcome, tracer, ctx):
        """Checkout + model run, with checkout timed when tracing."""
        if tracer is not None:
            t0 = tracer.now_us()
            self._checkout()
            tracer.record_under(ctx, "checkout", t0, tracer.now_us())
        else:
            self._checkout()
        model = self.pool.model(batch.model)
        payloads = [r.payload for r in batch.requests]
        target = (
            self.system
            if self.system is not None
            and getattr(model, "n_chips", 1) > 1
            else self.chip
        )
        blacklist = self.blacklist
        if blacklist:
            # degraded serving: recompile through the blacklist-aware
            # cache (the blacklist is part of graph_fingerprint, so
            # healthy and degraded binaries coexist).  Passed only when
            # non-empty — custom adapters without the kwarg keep working
            # on healthy hardware.
            outcome.degraded = True
            outputs = model.run_batch(
                target, self.pool.cache, payloads, stats=outcome.stats,
                blacklist=blacklist,
            )
        else:
            outputs = model.run_batch(
                target, self.pool.cache, payloads, stats=outcome.stats
            )
        if len(outputs) != len(batch.requests):
            raise TspError(
                f"model {batch.model!r} returned {len(outputs)} "
                f"outputs for {len(batch.requests)} requests"
            )
        return outputs

    def _finish_trace(self, outcome, tracer, token) -> None:
        """Record the enclosing batch span and drop the ambient context."""
        if tracer is None:
            return
        rtrace.pop(token)
        batch = outcome.batch
        tracer.record(
            f"batch {batch.model}#{batch.id}",
            self.name,
            tracer.us_of(outcome.started_s),
            tracer.us_of(outcome.finished_s),
            span_id=outcome.span_id,
            batch_id=batch.id,
            model=batch.model,
            args={
                "trigger": batch.trigger,
                "ok": outcome.ok,
                "requests": [r.id for r in batch.requests],
                "cycles": outcome.stats.cycles,
                "attempt": outcome.attempt,
                "degraded": outcome.degraded,
            },
        )


class ChipPool:
    """N simulated chips draining one dynamic batcher, self-healing."""

    def __init__(
        self,
        config: ArchConfig,
        models: list[ServeModel],
        batcher: DynamicBatcher,
        cache: ProgramCache,
        n_workers: int = 2,
        n_chips: int = 1,
        chip_kwargs: dict | None = None,
        on_outcome=None,
        tracer=None,
        n_spares: int = 0,
        retry: RetryPolicy | None = None,
        health_policy: HealthPolicy | None = None,
        health: HealthMonitor | None = None,
        on_health=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("a pool needs at least one worker")
        if n_chips < 1:
            raise ValueError("a worker needs at least one chip")
        if n_spares < 0:
            raise ValueError("n_spares must be >= 0")
        self.config = config
        self.batcher = batcher
        self.cache = cache
        self.n_chips = n_chips
        self.chip_kwargs = dict(chip_kwargs or {})
        #: optional RequestTracer workers record batch-scoped spans into
        self.tracer = tracer
        self.retry = retry or RetryPolicy()
        self.health_policy = health_policy or HealthPolicy()
        self.health = health if health is not None else HealthMonitor(
            wearout_threshold=self.health_policy.wearout_threshold
        )
        self.latency = LatencyEstimator()
        self._models = {m.name: m for m in models}
        for m in models:
            if getattr(m, "n_chips", 1) > n_chips:
                raise ServeError(
                    f"model {m.name!r} needs {m.n_chips} chips per batch "
                    f"but each pool worker owns only {n_chips}"
                )
        #: observer called with every BatchOutcome (the server's obs hook)
        self.on_outcome = on_outcome
        #: observer called with health events: quarantine, repair,
        #: degraded_enter, degraded_exit, retired
        self.on_health = on_health
        self._cond = threading.Condition()
        self._closing = False
        #: every quarantine ever taken (active + repaired), in order
        self.quarantined: list[QuarantineRecord] = []
        self.repaired_count = 0
        self._repair_queue: deque[QuarantineRecord] = deque()
        self._repair_thread: threading.Thread | None = None
        #: persistent fault hooks keyed by name -> (hardware id, hook):
        #: applied at every checkout of *that* hardware, so a fault
        #: follows its chip through quarantine, repair, and spare swaps
        self._hardware_faults: dict[str, tuple[int, object]] = {}
        #: idle replacement hardware: (system, chip, blacklist) triples
        self._spares: list = [
            (*self._build_hardware(f"spare{i}"), None)
            for i in range(n_spares)
        ]
        self.workers = [PoolWorker(self, i) for i in range(n_workers)]
        self._started = False

    def _build_hardware(self, tag: str):
        """One worker's (or spare's) hardware: a ring or a single chip."""
        if self.n_chips > 1:
            system = MultiChipSystem.ring(
                self.config, self.n_chips, **self.chip_kwargs
            )
            for c, chip in enumerate(system.chips):
                chip.chip_id = f"{tag}.c{c}"
            return system, system.chips[0]
        return None, TspChip(
            self.config, chip_id=tag, **self.chip_kwargs
        )

    @staticmethod
    def scrub_hardware(hardware) -> None:
        """Factory-reset a chip or a whole system for the next tenant."""
        if hasattr(hardware, "chips"):
            hardware.scrub()
            hardware.clear_error_models()
        else:
            hardware.scrub()

    def model(self, name: str) -> ServeModel:
        try:
            return self._models[name]
        except KeyError:
            raise TspError(f"no model {name!r} registered with the pool")

    # ------------------------------------------------------------------
    # persistent fault injection (chaos campaigns)
    # ------------------------------------------------------------------
    def attach_hardware_fault(self, hardware, name: str, hook) -> None:
        """Re-apply ``hook(hardware)`` at every checkout of ``hardware``.

        Unlike :meth:`PoolWorker.inject_at_checkout` (one-shot, bound to
        the worker), a hardware fault is keyed to the physical chip or
        system: it follows the hardware into quarantine and back, and a
        spare swapped in for it starts clean — exactly the semantics a
        chaos campaign needs for a fault window.
        """
        with self._cond:
            self._hardware_faults[name] = (id(hardware), hook)

    def detach_hardware_fault(self, name: str) -> None:
        """End a fault window started by :meth:`attach_hardware_fault`."""
        with self._cond:
            self._hardware_faults.pop(name, None)

    def _faults_for(self, hardware) -> list:
        with self._cond:
            return [
                hook
                for hid, hook in self._hardware_faults.values()
                if hid == id(hardware)
            ]

    # ------------------------------------------------------------------
    # failure handling: retry, diagnosis, quarantine, repair
    # ------------------------------------------------------------------
    def handle_failure(
        self,
        worker: PoolWorker,
        batch: Batch,
        outcome: BatchOutcome,
        error: BaseException,
    ):
        """Resolve every request of a failed batch: requeue or fail.

        Retryable (hardware) failures re-enqueue requests with budget
        left; the rest die with a :class:`~repro.errors.RequestError`
        whose ``outcome``/``attempt``/``chip_index`` make the failure
        attributable, chained to the original fault via ``__cause__``.
        Returns the :class:`~repro.serve.resilient.Diagnosis`.
        """
        now = time.monotonic()
        diag = diagnose(error, n_chips=self.n_chips)
        outcome.chip_index = (
            diag.chip_index
            if diag.chip_index is not None
            else chip_index_of(error)
        )
        if isinstance(error, TspError):
            error.with_context(chip=getattr(worker.chip, "chip_id", None))
        retryable = diag.kind != "software"
        estimate = self.latency.estimate(batch.model)
        requeued: list[InferenceRequest] = []
        for request in batch.requests:
            kind = None
            if not retryable:
                kind = "failed"
            elif (
                request.attempt + 1 >= self.retry.max_attempts
                or request.slack_s(now) < estimate
            ):
                kind = "retryable_exhausted"
            else:
                request.attempt += 1
                try:
                    self.batcher.requeue(request)
                except ServeError:
                    kind = "shutdown"
                else:
                    requeued.append(request)
                    continue
            terminal = RequestError(
                f"request {request.id} ({batch.model}) failed on attempt "
                f"{request.attempt} [{kind}]: {error}",
                outcome=kind,
                attempt=request.attempt,
                chip_index=outcome.chip_index,
                chip=getattr(error, "chip_id", None),
                cycle=getattr(error, "cycle", None),
                unit=getattr(error, "unit", None),
            )
            terminal.__cause__ = error
            request.timing.completed_s = now
            request.future.set_error(terminal)
        outcome.requeued = requeued
        return diag

    def apply_diagnosis(
        self, worker: PoolWorker, diag, error: BaseException
    ) -> str | None:
        """Walk the worker's health state machine after a failure.

        Returns the trace-span phase to record (``recompile_degraded``,
        ``quarantine``) or None when nothing changed.
        """
        if diag.kind == "degradable":
            merged = merge_blacklists(worker.blacklist, diag.blacklist)
            if merged != worker.blacklist or worker.state != "degraded":
                worker.blacklist = merged
                worker.state = "degraded"
                worker._degraded_ok = 0
                self._emit(
                    "degraded_enter",
                    worker=worker.name,
                    blacklist=merged.describe(),
                )
                return "recompile_degraded"
        elif diag.kind == "transient":
            worker.strikes += 1
            if worker.strikes >= self.health_policy.quarantine_after:
                self.quarantine(
                    worker, reason=f"{diag.reason}: {error}"
                )
                return "quarantine"
        return None

    def quarantine(
        self,
        worker: PoolWorker,
        reason: str,
        blacklist: Blacklist | None = None,
    ) -> QuarantineRecord:
        """Pull a worker's hardware from service; swap a spare or park."""
        with self._cond:
            record = QuarantineRecord(
                worker=worker.name,
                reason=reason,
                since_s=time.monotonic(),
                hardware=worker.hardware,
                blacklist=blacklist or worker.blacklist,
            )
            self.quarantined.append(record)
            self._repair_queue.append(record)
            swapped = bool(self._spares)
            if swapped:
                system, chip, spare_blacklist = self._spares.pop()
                worker._install(system, chip, spare_blacklist)
                worker.state = "degraded" if spare_blacklist else "healthy"
            else:
                worker.state = "quarantined"
                worker.strikes = 0
                worker.blacklist = None
            self._ensure_repair_thread()
            self._cond.notify_all()
        self._emit(
            "quarantine", worker=worker.name, reason=reason,
            swapped=swapped,
        )
        return record

    def _park(self, worker: PoolWorker) -> bool:
        """Block a hardware-less worker until repair re-arms it.

        Returns False when the pool shut down while the worker was still
        parked (the run loop exits).
        """
        with self._cond:
            while worker.state == "quarantined" and not self._closing:
                self._cond.wait(0.1)
            return worker.state != "quarantined"

    def _ensure_repair_thread(self) -> None:
        # caller holds self._cond
        if self._repair_thread is None or not self._repair_thread.is_alive():
            self._repair_thread = threading.Thread(
                target=self._repair_loop, name="tsp-serve-repair",
                daemon=True,
            )
            self._repair_thread.start()

    def _repair_loop(self) -> None:
        while True:
            with self._cond:
                while not self._repair_queue and not self._closing:
                    self._cond.wait(0.1)
                if self._closing:
                    return
                record = self._repair_queue.popleft()
            self._repair(record)

    def _repair(self, record: QuarantineRecord) -> None:
        """Scrub + N clean probe sweeps, then return hardware to service.

        A probe failure that localizes to a blacklist sends the hardware
        back as a *degraded* spare (served recompiled); an unlocalizable
        probe failure retires it — the quarantine record stays active.
        """
        hardware = record.hardware
        blacklist = record.blacklist
        try:
            for _ in range(self.health_policy.probes_required):
                self.scrub_hardware(hardware)
                probe_memory(hardware, skip=blacklist)
                record.probes_passed += 1
        except Exception as error:
            localized = blacklist_from_fault(
                error,
                chip_index=chip_index_of(error) or 0,
                n_chips=self.n_chips,
            )
            if localized is None:
                record.reason += f"; retired, probe failed: {error}"
                self._emit("retired", worker=record.worker)
                return
            blacklist = merge_blacklists(blacklist, localized)
            record.blacklist = blacklist
        record.repaired_s = time.monotonic()
        with self._cond:
            self.repaired_count += 1
            chips = getattr(hardware, "chips", None)
            entry = (
                (hardware, chips[0], blacklist)
                if chips is not None
                else (None, hardware, blacklist)
            )
            parked = next(
                (
                    w for w in self.workers
                    if w.state == "quarantined" and not w._exited
                ),
                None,
            )
            if parked is not None:
                parked._install(*entry)
                parked.state = "degraded" if blacklist else "healthy"
            else:
                self._spares.append(entry)
            self._cond.notify_all()
        self._emit(
            "repair", worker=record.worker,
            degraded=bool(blacklist),
            probes=record.probes_passed,
        )

    def _emit(self, kind: str, **details) -> None:
        if self.on_health is not None:
            try:
                self.on_health({"kind": kind, **details})
            except Exception:
                pass  # observability must never kill a worker

    # ------------------------------------------------------------------
    def capacity(self) -> int:
        """Workers able to serve (healthy + degraded; parked excluded)."""
        return sum(
            1
            for w in self.workers
            if w.state != "quarantined" and not w._exited
        )

    @property
    def active_quarantined(self) -> list[QuarantineRecord]:
        return [r for r in self.quarantined if r.active]

    @property
    def n_spares(self) -> int:
        with self._cond:
            return len(self._spares)

    # ------------------------------------------------------------------
    def execute_batch(self, worker: PoolWorker, batch: Batch) -> None:
        outcome = worker.execute(batch)
        if self.on_outcome is not None:
            try:
                self.on_outcome(outcome)
            except Exception:
                pass  # observability must never kill a worker

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            for worker in self.workers:
                worker.start()

    def shutdown(self) -> None:
        """Wake parked workers and stop the repair loop for teardown."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()

    def join(self, timeout: float | None = None) -> None:
        """Wait for workers to exit (the batcher must be closed first).

        Dead workers are detected eagerly: a thread that died on an
        unexpected exception re-raises it here immediately instead of
        silently waiting out the full timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for worker in self.workers:
                if not worker.is_alive() and worker.failure is not None:
                    raise worker.failure
            alive = [w for w in self.workers if w.is_alive()]
            if not alive:
                break
            if deadline is not None and time.monotonic() >= deadline:
                return
            alive[0].join(0.05)
        repair = self._repair_thread
        if repair is not None and repair.is_alive():
            remaining = (
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            repair.join(remaining if remaining is not None else 1.0)

    @property
    def alive(self) -> int:
        return sum(1 for w in self.workers if w.is_alive())
